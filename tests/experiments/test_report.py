"""Report-generator tests.

The full fast-grid report costs ~40 s, so the structure check runs it
once behind a module-scoped fixture and the CLI test stubs the generator.
"""

import pytest

from repro.experiments import report


@pytest.fixture(scope="module")
def generated():
    return report.generate_report(fast=True)


class TestReport:
    def test_markdown_structure(self, generated):
        for heading in (
            "# FM Backscatter reproduction report",
            "## Fig. 2",
            "## Fig. 4",
            "## Fig. 5",
            "## Fig. 6",
            "## Fig. 7",
            "## Fig. 8a",
            "## Fig. 9",
            "## Fig. 11",
            "## Fig. 14",
            "## Fig. 17b",
            "## Deployment scale-out",
            "## Power",
        ):
            assert heading in generated
        assert "{" not in generated  # no leaked format placeholders

    def test_headline_claims_present(self, generated):
        # The report must carry the power headline verbatim enough for a
        # reader to compare with the paper.
        assert "11.07 uW" in generated

    def test_cli_writes_file(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            report, "generate_report", lambda fast=True: "# FM Backscatter reproduction report\nstub"
        )
        out = tmp_path / "report.md"
        assert report.main([str(out)]) == 0
        assert out.read_text().startswith("# FM Backscatter reproduction report")

    def test_cli_prints_without_path(self, capsys, monkeypatch):
        monkeypatch.setattr(
            report, "generate_report", lambda fast=True: "# stub report"
        )
        assert report.main([]) == 0
        assert "# stub report" in capsys.readouterr().out

"""Smoke-run every example under its small-N fast mode.

The examples are the repo's front door — and, being plain scripts, the
only code the unit suites never import. Each example's ``main`` honors
``REPRO_EXAMPLE_FAST=1`` (or ``main(fast=True)``) with a reduced grid /
duration, so running them all stays test-suite friendly while still
executing every line of driver logic end to end.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    # Registered so dataclasses/pickle introspection inside the module
    # can resolve it while it executes.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def test_every_example_is_covered():
    # A new example must either gain a fast mode or be excluded here
    # explicitly — silently skipping it is how examples rot.
    assert EXAMPLES, "examples/ directory disappeared?"


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_main_runs_fast(name, capsys):
    module = load_example(name)
    assert hasattr(module, "main"), f"examples/{name}.py has no main()"
    module.main(fast=True)
    out = capsys.readouterr().out
    assert out.strip(), f"examples/{name}.py printed nothing"

"""Cost-model planner: features, calibration, decisions, auto execution.

The non-timing acceptance gates for ``REPRO_SWEEP_BACKEND=auto`` live
here: under the *shipped* calibration the planner must route the
known-regressing long-row Fig. 8 grid away from the batched executor and
the short-row fading grid onto it — pure cost-model arithmetic over the
committed ``calibration.json``, so CI checks the crossover without
trusting wall clocks. Decision tests that need a *specific* crossover
pin their own constants through ``REPRO_PLANNER_CALIBRATION``.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.audio.tones import tone
from repro.channel.fading import BodyMotionFading, MotionFadingSpec
from repro.constants import AUDIO_RATE_HZ
from repro.data.bits import random_bits
from repro.engine import (
    AmbientCache,
    AxisRef,
    CalibrationConstants,
    Scenario,
    SweepRunner,
    SweepSpec,
    load_calibration,
    plan_sweep,
)
from repro.engine.planner import (
    CALIBRATION_VERSION,
    DEFAULT_CALIBRATION_PATH,
    estimate,
    extract_features,
)
from repro.errors import ConfigurationError
from repro.experiments import fig08_ber_overlay as fig08
from repro.experiments import fig09_mrc as fig09
from repro.utils.env import fast_numerics
from repro.utils.rand import as_generator

SEED = 2017


def _mean_abs(run):
    return float(np.mean(np.abs(run.received.mono)))


def _prepared(scenario):
    """(data, points) the way the runner derives them before planning."""
    gen = as_generator(SEED)
    data = scenario.prepare(gen) if scenario.prepare is not None else {}
    return data, scenario.sweep.points()


def _tone_scenario(duration_s=0.05, n_points=4, **base_extra):
    payload = tone(1000.0, duration_s, AUDIO_RATE_HZ, amplitude=0.9)
    return Scenario(
        name="plan",
        sweep=SweepSpec.grid(distance_ft=tuple(2 + i for i in range(n_points))),
        prepare=lambda gen: {"payload": payload},
        base_chain=dict(
            {"program": "silence", "stereo_decode": False}, **base_extra
        ),
        chain_axes=("distance_ft",),
        payload="payload",
        measure=_mean_abs,
    )


class TestCalibrationLoading:
    def test_shipped_calibration_loads(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLANNER_CALIBRATION", raising=False)
        assert DEFAULT_CALIBRATION_PATH.exists()
        constants = load_calibration()
        for name, value in dataclasses.asdict(constants).items():
            assert value > 0, name
        # The shipped constants must encode the measured crossover: the
        # vectorized path wins at the short-row anchor and loses (or at
        # best ties) serial at the long-row anchor.
        assert constants.vector_sample_short_ns < constants.serial_sample_ns
        assert constants.vector_sample_long_ns >= constants.vector_sample_short_ns

    def test_env_override_used(self, tmp_path, monkeypatch):
        constants = CalibrationConstants(serial_sample_ns=123.25)
        path = tmp_path / "cal.json"
        path.write_text(json.dumps(constants.to_payload()))
        monkeypatch.setenv("REPRO_PLANNER_CALIBRATION", str(path))
        assert load_calibration().serial_sample_ns == 123.25

    def test_version_skew_rejected(self, tmp_path, monkeypatch):
        payload = CalibrationConstants().to_payload()
        payload["version"] = CALIBRATION_VERSION + 1
        path = tmp_path / "cal.json"
        path.write_text(json.dumps(payload))
        monkeypatch.setenv("REPRO_PLANNER_CALIBRATION", str(path))
        with pytest.raises(ConfigurationError, match="version"):
            load_calibration()

    def test_unknown_constant_rejected(self, tmp_path, monkeypatch):
        payload = CalibrationConstants().to_payload()
        payload["constants"]["warp_factor"] = 9.0
        path = tmp_path / "cal.json"
        path.write_text(json.dumps(payload))
        monkeypatch.setenv("REPRO_PLANNER_CALIBRATION", str(path))
        with pytest.raises(ConfigurationError, match="warp_factor"):
            load_calibration()

    def test_malformed_json_rejected(self, tmp_path, monkeypatch):
        path = tmp_path / "cal.json"
        path.write_text("{not json")
        monkeypatch.setenv("REPRO_PLANNER_CALIBRATION", str(path))
        with pytest.raises(ConfigurationError, match="unreadable"):
            load_calibration()

    def test_interpolation_clamps_at_anchors(self):
        c = CalibrationConstants(
            vector_sample_short_ns=50.0,
            vector_sample_long_ns=200.0,
            short_row_samples=10_000,
            long_row_samples=100_000,
        )
        assert c.vector_sample_ns(1_000) == 50.0
        assert c.vector_sample_ns(10_000) == 50.0
        assert c.vector_sample_ns(1_000_000) == 200.0
        mid = c.vector_sample_ns(31_623)  # ~log-midpoint
        assert 50.0 < mid < 200.0


class TestFeatureExtraction:
    def test_partitions_match_batched_executor_grouping(self):
        # One front-end group, two receiver partitions (phone mono + car
        # stereo) — the same split the batched executor performs.
        payload = tone(1000.0, 0.1, AUDIO_RATE_HZ, amplitude=0.9)
        scenario = Scenario(
            name="mixed",
            sweep=SweepSpec.grid(receiver=("smartphone", "car"), distance_ft=(2, 8)),
            prepare=lambda gen: {"payload": payload},
            base_chain={"program": "silence", "stereo_decode": False},
            chain_axes=("distance_ft",),
            chain_value_params={
                "receiver": {
                    "smartphone": {"receiver_kind": "smartphone"},
                    "car": {"receiver_kind": "car"},
                }
            },
            payload="payload",
            measure=_mean_abs,
        )
        data, points = _prepared(scenario)
        features, splittable = extract_features(
            scenario, data, points, AmbientCache(), ambient_master=7
        )
        assert splittable
        assert len(features) == 2
        by_stereo = {f.stereo: f for f in features}
        assert by_stereo[False].n_points == 2  # smartphone half
        assert by_stereo[True].n_points == 2  # car radio always stereo
        for f in features:
            # Exact row length: payload upsampled audio->MPX rate (x10).
            assert f.n_samples == payload.size * 10
            assert f.batchable
            assert not f.cache_warm  # nothing synthesized yet
        covered = sorted(pos for f in features for pos in f.positions)
        assert covered == list(range(len(points)))

    def test_cache_warmth_probed_without_synthesis(self):
        from repro.engine.execution import execute_point

        scenario = _tone_scenario()
        data, points = _prepared(scenario)
        cache = AmbientCache()
        cold, _ = extract_features(scenario, data, points, cache, ambient_master=7)
        assert not cold[0].cache_warm
        assert len(cache) == 0  # probing must not synthesize
        # One executed point fills the partition's shared composite entry
        # (warmth is keyed on the front end + master, not the point).
        execute_point(scenario, points[0], 123, data, cache, ambient_master=7)
        warm, _ = extract_features(scenario, data, points, cache, ambient_master=7)
        assert warm[0].cache_warm

    def test_measure_driven_grid_is_one_serial_partition(self):
        scenario = Scenario(
            name="md",
            sweep=SweepSpec.grid(a=(1, 2, 3)),
            measure=lambda run: run.point["a"],
            cache_ambient=False,
        )
        features, splittable = extract_features(scenario, {}, scenario.sweep.points(), None, 0)
        assert splittable
        assert len(features) == 1
        assert features[0].measure_driven
        costs = estimate(features[0])
        assert list(costs) == ["serial"]


class TestCostModel:
    def test_pools_require_workers_and_picklability(self):
        scenario = _tone_scenario()
        data, points = _prepared(scenario)
        features, _ = extract_features(scenario, data, points, AmbientCache(), 0)
        solo = estimate(features[0], max_workers=1, picklable=True)
        assert "thread" not in solo and "process" not in solo
        pooled = estimate(features[0], max_workers=4, picklable=False)
        assert "thread" in pooled and "process" not in pooled
        full = estimate(features[0], max_workers=4, picklable=True)
        assert set(full) == {"serial", "thread", "process", "batched"}

    def test_batched_excluded_when_cache_off(self):
        scenario = _tone_scenario()
        scenario.cache_ambient = False
        data, points = _prepared(scenario)
        features, _ = extract_features(scenario, data, points, None, 0)
        assert not features[0].batchable
        assert "batched" not in estimate(features[0])


POLARIZED = CalibrationConstants(
    point_overhead_s=1e-4,
    serial_sample_ns=100.0,
    vector_sample_short_ns=20.0,
    vector_sample_long_ns=400.0,
    short_row_samples=30_000,
    long_row_samples=200_000,
)
"""Constants with an unambiguous crossover, for decision tests that must
not depend on the shipped (host-measured) numbers."""


class TestDecisionGates:
    """The crossover gates CI runs without trusting wall clocks."""

    @pytest.fixture(autouse=True)
    def default_calibration(self, monkeypatch):
        # "Under default calibration" is the contract being tested.
        monkeypatch.delenv("REPRO_PLANNER_CALIBRATION", raising=False)

    @pytest.mark.skipif(
        fast_numerics(),
        reason="fast_vector_factor intentionally moves the serial/batched "
        "crossover under REPRO_NUMERICS=fast; this gate encodes exact-mode "
        "pricing",
    )
    def test_never_batched_on_fig08_long_row_grid(self):
        # The grid the backend-matrix benchmark measures regressing ~2x
        # under batched: 100 bps payload -> 0.4 s waveform -> 192k-sample
        # rows that starve the chunker. The planner must never send it
        # to the batched executor.
        modem = fig08.make_modem("100bps")

        def prepare(gen):
            from repro.utils.rand import child_generator

            bits = random_bits(40, child_generator(gen, "payload", "100bps"))
            return {"bits": bits, "waveform": modem.modulate(bits)}

        scenario = Scenario(
            name="fig08",
            sweep=SweepSpec.grid(
                power_dbm=fig08.DEFAULT_POWERS_DBM,
                distance_ft=fig08.DEFAULT_DISTANCES_FT,
            ),
            prepare=prepare,
            base_chain={"program": "news", "stereo_decode": False},
            chain_axes=("power_dbm", "distance_ft"),
            rng_keys=("100bps", AxisRef("power_dbm"), AxisRef("distance_ft")),
            payload="waveform",
            measure=fig08.score_ber,
            measure_params={"modem": modem},
        )
        data, points = _prepared(scenario)
        plan = plan_sweep(scenario, data, points, AmbientCache(), ambient_master=1)
        assert plan.decisions, "a decision per partition is required"
        assert all(d.backend != "batched" for d in plan.decisions)

    def test_batched_on_fading_short_row_grid(self):
        from repro.data.fdm import FdmFskModem

        scenario = fig09.build_scenario(
            FdmFskModem(symbol_rate=200),
            distances_ft=(1, 2, 3, 4, 6, 8, 12, 16),
            max_factor=4,
            n_bits=100,
        )
        scenario.base_chain = dict(
            scenario.base_chain, fading=MotionFadingSpec("running")
        )
        data, points = _prepared(scenario)
        plan = plan_sweep(scenario, data, points, AmbientCache(), ambient_master=1)
        assert all(d.backend == "batched" for d in plan.decisions)
        covered = sorted(i for d in plan.decisions for i in d.point_indices)
        assert covered == list(range(len(points)))


class TestPlanExecution:
    @pytest.fixture(autouse=True)
    def polarized_calibration(self, tmp_path, monkeypatch):
        path = tmp_path / "calibration.json"
        path.write_text(json.dumps(POLARIZED.to_payload()))
        monkeypatch.setenv("REPRO_PLANNER_CALIBRATION", str(path))

    def test_auto_records_decision_per_partition(self):
        scenario = _tone_scenario(duration_s=0.05, n_points=4)
        result = SweepRunner(
            scenario, rng=SEED, cache=AmbientCache(), backend="auto"
        ).run()
        assert result.plan is not None and len(result.plan) == 1
        decision = result.plan[0]
        assert decision.backend == "batched"  # short rows, polarized cal
        assert decision.point_indices == (0, 1, 2, 3)
        assert decision.chunk_rows >= 1
        assert set(decision.predicted_s) >= {"serial", "batched"}
        assert decision.features["n_samples"] == 24_000
        assert result.backend == "auto[batched:4]"
        assert result.n_fallbacks == 0

    def test_auto_with_cache_off_runs_serial(self):
        scenario = _tone_scenario(n_points=3)
        scenario.cache_ambient = False
        result = SweepRunner(scenario, rng=SEED, backend="auto").run()
        assert [d.backend for d in result.plan] == ["serial"]
        serial = SweepRunner(scenario, rng=SEED, backend="serial").run()
        assert result.values == serial.values

    def test_live_fading_model_forces_uniform_backend(self):
        # A shared stateful fading model consumes its stream in grid
        # order across points; a heterogeneous split would reorder the
        # draws. The planner must collapse to one backend even when the
        # partitions' individual optima differ (short + long rows here).
        from repro.engine import PayloadSelector

        live = BodyMotionFading("running", rng=7)
        short = tone(1000.0, 0.02, AUDIO_RATE_HZ, amplitude=0.9)
        long_ = tone(1000.0, 0.5, AUDIO_RATE_HZ, amplitude=0.9)
        scenario = Scenario(
            name="live",
            sweep=SweepSpec.grid(row=("short", "long"), distance_ft=(2, 4)),
            prepare=lambda gen: {"short": short, "long": long_},
            base_chain={
                "program": "silence",
                "stereo_decode": False,
                "fading": live,
            },
            chain_axes=("distance_ft",),
            payload=PayloadSelector("row", {"short": "short", "long": "long"}),
            measure=_mean_abs,
        )
        data, points = _prepared(scenario)
        features, splittable = extract_features(
            scenario, data, points, AmbientCache(), 0
        )
        assert not splittable
        plan = plan_sweep(scenario, data, points, AmbientCache(), ambient_master=3)
        assert len({d.backend for d in plan.decisions}) == 1

        # The declarative-spec twin of the same grid IS splittable.
        spec_scenario = Scenario(
            name="live",
            sweep=scenario.sweep,
            prepare=scenario.prepare,
            base_chain=dict(scenario.base_chain, fading=MotionFadingSpec("running")),
            chain_axes=("distance_ft",),
            payload=scenario.payload,
            measure=_mean_abs,
        )
        data, points = _prepared(spec_scenario)
        _, splittable = extract_features(
            spec_scenario, data, points, AmbientCache(), 0
        )
        assert splittable
        plan = plan_sweep(
            spec_scenario, data, points, AmbientCache(), ambient_master=3
        )
        assert {d.backend for d in plan.decisions} == {"batched", "serial"}

    def test_single_point_grid_short_circuits_without_plan(self):
        scenario = _tone_scenario(n_points=1)
        result = SweepRunner(
            scenario, rng=SEED, cache=AmbientCache(), backend="auto"
        ).run()
        assert result.backend == "serial"
        assert result.plan is None

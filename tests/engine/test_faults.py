"""Unified fault registry: strict grammar + the chaos bit-identity matrix.

Two contracts. The grammar one: ``REPRO_FAULTS`` parses strictly like
every ``REPRO_*`` knob — a malformed directive raises
:class:`~repro.errors.ConfigurationError` naming the variable — and the
deprecated ``REPRO_LAUNCHER_FAULT`` alias keeps its original behavior
behind a :class:`DeprecationWarning`. The chaos one (the CI ``chaos``
leg in miniature): **every registered fault class**, injected into the
fig09 grid, leaves the merged result bit-identical to a
``backend="serial"`` run at the same seed — crashes, stragglers, lost
results, torn cache writes and init failures cost retries and wall
clock, never bits.
"""

import warnings

import numpy as np
import pytest

from repro.data.fdm import FdmFskModem
from repro.engine import Scenario, SweepRunner, SweepSpec, launch_sweep
from repro.engine.faults import (
    FAULT_KINDS,
    FAULTS_ENV_VAR,
    LEGACY_FAULT_ENV_VAR,
    Fault,
    active_plan,
    legacy_fault_spec,
    parse_faults,
)
from repro.engine.launcher import RetryPolicy, Shard
from repro.errors import ConfigurationError
from repro.experiments import fig09_mrc as fig09

SEED = 2017


def fig09_scenario() -> Scenario:
    return fig09.build_scenario(
        FdmFskModem(symbol_rate=200),
        distances_ft=(2, 4),
        max_factor=2,
        n_bits=40,
    )


def _draw(run):
    return (run.point["a"], run.point["b"], float(run.rng.random()))


def rng_scenario() -> Scenario:
    return Scenario(
        name="chaos",
        sweep=SweepSpec.grid(a=(1, 2, 3), b=(10.0, 20.0)),
        measure=_draw,
        cache_ambient=False,
    )


@pytest.fixture(autouse=True)
def _clean_fault_env(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    monkeypatch.delenv(LEGACY_FAULT_ENV_VAR, raising=False)


class TestGrammar:
    def test_empty_spec_is_a_falsy_plan(self):
        assert not parse_faults("")
        assert not active_plan()

    def test_full_grammar_round_trip(self):
        plan = parse_faults(
            "kill-shard:2, delay-shard:0:1.5 ,corrupt-cache:1,drop-result:3,"
            "kill-point:7,init-fail:0"
        )
        assert len(plan.faults) == 6
        assert plan.faults[0] == Fault(kind="kill-shard", target=2)
        assert plan.faults[1] == Fault(kind="delay-shard", target=0, delay_s=1.5)
        assert plan.faults[4] == Fault(kind="kill-point", target=7)

    @pytest.mark.parametrize(
        "bad",
        [
            "drop-table:1",          # unknown class
            "kill-shard",            # missing target
            "kill-shard:",           # empty target
            "kill-shard:-1",         # negative target
            "kill-shard:x",          # non-integer target
            "delay-shard:1",         # delay grammar needs seconds
            "delay-shard:1:zero",    # non-numeric delay
            "delay-shard:1:0",       # zero delay is a typo, not a fault
            "delay-shard:1:2:3",     # too many fields
        ],
    )
    def test_malformed_directive_fails_fast(self, bad):
        with pytest.raises(ConfigurationError, match=FAULTS_ENV_VAR):
            parse_faults(bad)

    def test_error_names_the_registered_classes(self):
        with pytest.raises(ConfigurationError, match="kill-shard"):
            parse_faults("meteor-strike:1")

    def test_active_plan_reads_env_strictly(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "kill-shard:1,drop-result:2")
        plan = active_plan()
        assert {f.kind for f in plan.faults} == {"kill-shard", "drop-result"}
        monkeypatch.setenv(FAULTS_ENV_VAR, "kill-shard:1,bogus")
        with pytest.raises(ConfigurationError, match=FAULTS_ENV_VAR):
            active_plan()

    def test_legacy_alias_combines_and_warns(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "drop-result:2")
        monkeypatch.setenv(LEGACY_FAULT_ENV_VAR, "kill-shard:1")
        with pytest.warns(DeprecationWarning, match=LEGACY_FAULT_ENV_VAR):
            plan = active_plan()
        assert {f.kind for f in plan.faults} == {"drop-result", "kill-shard"}

    def test_legacy_alias_keeps_its_narrow_grammar(self, monkeypatch):
        # The old knob never learned the new classes; aliases must not
        # silently widen, or old pipelines typo into new semantics.
        monkeypatch.setenv(LEGACY_FAULT_ENV_VAR, "kill-point:1")
        with pytest.raises(ConfigurationError, match=LEGACY_FAULT_ENV_VAR):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                active_plan()

    def test_legacy_fault_spec_shim(self, monkeypatch):
        assert legacy_fault_spec() is None
        monkeypatch.setenv(LEGACY_FAULT_ENV_VAR, "kill-shard:3")
        with pytest.warns(DeprecationWarning):
            assert legacy_fault_spec() == ("kill-shard", 3)


class TestPlanQueries:
    def test_kill_shard_fires_on_first_attempt_only(self):
        plan = parse_faults("kill-shard:1")
        assert plan.kill(Shard(shard_id=1, start=2, stop=4))
        assert not plan.kill(Shard(shard_id=1, start=2, stop=4, attempt=1))
        assert not plan.kill(Shard(shard_id=0, start=0, stop=2))

    def test_kill_point_fires_on_every_attempt(self):
        plan = parse_faults("kill-point:3")
        assert plan.kill(Shard(shard_id=9, start=2, stop=4, attempt=5))
        assert not plan.kill(Shard(shard_id=9, start=4, stop=6, attempt=5))

    def test_delay_drop_init_and_corrupt_targets(self):
        plan = parse_faults("delay-shard:2:0.25,drop-result:1,init-fail:0,corrupt-cache:4")
        assert plan.delay_s(Shard(shard_id=2, start=0, stop=1)) == 0.25
        assert plan.delay_s(Shard(shard_id=2, start=0, stop=1, attempt=1)) == 0.0
        assert plan.drop_result(Shard(shard_id=1, start=0, stop=1))
        assert plan.init_fail(0) and not plan.init_fail(1)
        assert plan.corrupt_save(4) and not plan.corrupt_save(3)


@pytest.fixture(scope="module")
def fig09_serial():
    return SweepRunner(fig09_scenario(), rng=SEED, backend="serial").run()


class TestChaosMatrix:
    """Every fault class on the fig09 grid: same bits as serial, always.

    The fig09 grid at ``shard_points=1`` is four single-point shards
    (grid order: (2ft, rep1), (2ft, rep2), (4ft, rep1), (4ft, rep2)),
    so shard ids and point indices coincide — each directive below has a
    deterministic, known victim.
    """

    @pytest.mark.parametrize(
        "spec, kwargs",
        [
            # A crashed worker: reaped, shard re-sliced and retried.
            ("kill-shard:1", {}),
            # A persistently dying range: retries exhaust, the parent
            # salvages the point in-process (degradation, not data loss).
            ("kill-point:2", {"retry_policy": RetryPolicy(max_retries=1)}),
            # A forced straggler: deadline speculation re-queues it.
            ("delay-shard:0:0.6", {"shard_deadline_s": 0.05}),
            # A result lost in transit: the worker looks busy forever, so
            # only speculation can recover the range.
            ("drop-result:1", {"shard_deadline_s": 0.2}),
            # A torn cache write that survived the atomic rename: readers
            # evict it and resynthesize. Ordinal 1 is the first *composite*
            # the warm-up spills (ordinal 0 is its mpx ingredient, which
            # workers never reload — composites hit directly).
            ("corrupt-cache:1", {}),
            # A worker broken at spawn: reaped before its first task,
            # replaced with a fresh id.
            ("init-fail:0", {}),
        ],
        ids=lambda v: v if isinstance(v, str) else "",
    )
    def test_fault_class_does_not_change_a_bit(
        self, monkeypatch, fig09_serial, spec, kwargs
    ):
        monkeypatch.setenv(FAULTS_ENV_VAR, spec)
        report = launch_sweep(
            fig09_scenario(), rng=SEED, n_workers=2, shard_points=1, **kwargs
        )
        assert len(report.result.values) == len(fig09_serial.values)
        for ours, reference in zip(report.result.values, fig09_serial.values):
            assert np.array_equal(ours, reference)

    def test_kill_shard_costs_a_failure(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "kill-shard:1")
        report = launch_sweep(fig09_scenario(), rng=SEED, n_workers=2, shard_points=1)
        assert report.failures >= 1
        assert report.retries >= 1
        assert 87 in report.exit_codes  # the chaos kill's distinguishable code
        assert not report.degraded

    def test_kill_point_degrades_but_completes(self, monkeypatch, fig09_serial):
        monkeypatch.setenv(FAULTS_ENV_VAR, "kill-point:2")
        report = launch_sweep(
            fig09_scenario(),
            rng=SEED,
            n_workers=2,
            shard_points=1,
            retry_policy=RetryPolicy(max_retries=1),
        )
        assert report.degraded
        assert report.degraded_points >= 1
        assert len(report.result.values) == len(fig09_serial.values)
        for ours, reference in zip(report.result.values, fig09_serial.values):
            assert np.array_equal(ours, reference)

    def test_corrupt_cache_is_reaped_and_counted(self, monkeypatch, fig09_serial):
        monkeypatch.setenv(FAULTS_ENV_VAR, "corrupt-cache:1")
        report = launch_sweep(fig09_scenario(), rng=SEED, n_workers=2, shard_points=1)
        # The torn entry read as a miss somewhere (parent warm-up or a
        # worker), was reaped and resynthesized — and the bits survived.
        assert report.result.cache_stats["corrupt_evictions"] >= 1
        for ours, reference in zip(report.result.values, fig09_serial.values):
            assert np.array_equal(ours, reference)

    def test_drop_result_recovers_via_speculation(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "drop-result:1")
        serial = SweepRunner(rng_scenario(), rng=SEED, backend="serial").run()
        report = launch_sweep(
            rng_scenario(), rng=SEED, n_workers=2, shard_points=1,
            shard_deadline_s=0.1,
        )
        assert report.stragglers >= 1  # the silent worker got speculated
        assert report.result.values == serial.values

    def test_combined_faults_still_bit_identical(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "kill-shard:1,init-fail:0")
        serial = SweepRunner(rng_scenario(), rng=SEED, backend="serial").run()
        report = launch_sweep(rng_scenario(), rng=SEED, n_workers=2, shard_points=1)
        assert report.failures >= 2
        assert report.result.values == serial.values

    def test_matrix_covers_every_registered_class(self):
        # A new fault class must be added to the chaos matrix above, or
        # this trips: the registry and the matrix move together.
        covered = {
            "kill-shard", "kill-point", "delay-shard",
            "drop-result", "corrupt-cache", "init-fail",
        }
        assert covered == set(FAULT_KINDS)

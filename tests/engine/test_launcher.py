"""Distributed launcher: fan-out, crash retry, stragglers, bit-identity.

The acceptance bar for the launcher is the determinism contract under
chaos: a worker killed mid-shard (the ``REPRO_LAUNCHER_FAULT`` knob), a
straggler past its deadline, or a duplicated speculative completion must
not change a single bit of the merged result relative to a
``backend="serial"`` run at the same seed — every point's stream is
pre-derived, so retried shards recompute identical bytes.
"""

import time

import numpy as np
import pytest

from repro.data.fdm import FdmFskModem
from repro.engine import Scenario, SweepRunner, SweepSpec, launch_sweep
from repro.engine.launcher import (
    FAULT_ENV_VAR,
    SHARD_POINTS_ENV_VAR,
    RetryPolicy,
    Shard,
    default_shard_points,
    fault_spec,
)
from repro.errors import ConfigurationError, LauncherError
from repro.experiments import fig09_mrc as fig09
from repro.utils.env import fast_numerics

exact_numerics_only = pytest.mark.skipif(
    fast_numerics(),
    reason="cross-backend bit-identity is an exact-numerics contract; the "
    "launcher-vs-serial tests below compare like against like and stay on",
)

SEED = 2017


def _draw(run):
    """Module-level measure (picklable) exposing the point's stream."""
    return (run.point["a"], run.point["b"], float(run.rng.random()))


def _slow_draw(run, slow_a, sleep_s):
    """Like ``_draw`` but one grid row stalls — a synthetic straggler."""
    if run.point["a"] == slow_a:
        time.sleep(sleep_s)
    return (run.point["a"], run.point["b"], float(run.rng.random()))


def _explode(run, bad_a):
    """Deterministic per-point failure: retries re-fail identically."""
    if run.point["a"] == bad_a:
        raise ValueError(f"measure refuses a={bad_a}")
    return run.point["a"]


def rng_scenario(measure=_draw, **measure_params) -> Scenario:
    return Scenario(
        name="launch",
        sweep=SweepSpec.grid(a=(1, 2, 3), b=(10.0, 20.0)),
        measure=measure,
        measure_params=measure_params,
        cache_ambient=False,
    )


def fig09_scenario() -> Scenario:
    return fig09.build_scenario(
        FdmFskModem(symbol_rate=200),
        distances_ft=(2, 4),
        max_factor=2,
        n_bits=40,
    )


class TestLaunchMatchesSerial:
    def test_rng_grid_bit_identical_to_serial(self):
        serial = SweepRunner(rng_scenario(), rng=SEED, backend="serial").run()
        report = launch_sweep(rng_scenario(), rng=SEED, n_workers=2, shard_points=2)
        assert report.result.values == serial.values
        assert [p.index for p in report.result.points] == list(range(6))
        assert report.n_points == 6
        assert report.n_shards == 3
        assert report.failures == 0
        assert report.result.backend.startswith("launcher[")

    def test_single_worker_single_shard(self):
        serial = SweepRunner(rng_scenario(), rng=SEED, backend="serial").run()
        report = launch_sweep(rng_scenario(), rng=SEED, n_workers=1, shard_points=6)
        assert report.result.values == serial.values
        assert report.n_shards == 1

    def test_fig09_grid_bit_identical_to_serial(self):
        serial = SweepRunner(fig09_scenario(), rng=SEED, backend="serial").run()
        report = launch_sweep(fig09_scenario(), rng=SEED, n_workers=2, shard_points=1)
        assert len(report.result.values) == len(serial.values)
        for ours, reference in zip(report.result.values, serial.values):
            assert np.array_equal(ours, reference)
        # The parent pre-derived + re-ran prepare, so merged data matches.
        assert np.array_equal(report.result.data["bits"], serial.data["bits"])

    def test_progress_events_cover_the_grid(self):
        events = []
        launch_sweep(
            rng_scenario(), rng=SEED, n_workers=2, shard_points=2,
            progress=events.append,
        )
        kinds = {event["kind"] for event in events}
        assert "dispatch" in kinds and "shard-done" in kinds
        done = [e for e in events if e["kind"] == "shard-done"]
        assert max(e["points_done"] for e in done) == 6
        assert all(e["points_total"] == 6 for e in events)


class TestInjectedFailure:
    """The CI ``distributed`` leg in miniature: kill a worker mid-grid."""

    def test_killed_worker_does_not_change_a_bit(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV_VAR, "kill-shard:1")
        serial = SweepRunner(fig09_scenario(), rng=SEED, backend="serial").run()
        report = launch_sweep(fig09_scenario(), rng=SEED, n_workers=2, shard_points=1)
        assert report.failures >= 1
        assert report.retries >= 1
        for ours, reference in zip(report.result.values, serial.values):
            assert np.array_equal(ours, reference)

    def test_killed_worker_on_rng_grid(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV_VAR, "kill-shard:0")
        serial = SweepRunner(rng_scenario(), rng=SEED, backend="serial").run()
        report = launch_sweep(rng_scenario(), rng=SEED, n_workers=2, shard_points=3)
        assert report.failures >= 1
        assert report.result.values == serial.values

    def test_malformed_fault_knob_fails_fast(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV_VAR, "drop-table")
        with pytest.raises(ConfigurationError, match=FAULT_ENV_VAR):
            launch_sweep(rng_scenario(), rng=SEED)

    def test_fault_spec_parses_and_rejects(self, monkeypatch):
        monkeypatch.delenv(FAULT_ENV_VAR, raising=False)
        assert fault_spec() is None
        monkeypatch.setenv(FAULT_ENV_VAR, "kill-shard:3")
        assert fault_spec() == ("kill-shard", 3)
        monkeypatch.setenv(FAULT_ENV_VAR, "kill-shard:")
        with pytest.raises(ConfigurationError):
            fault_spec()


class TestStragglers:
    def test_speculation_rescues_a_stalled_shard(self):
        # Row a=1 sleeps well past the deadline; speculation re-queues it
        # while the original keeps running. Whichever copy lands first
        # wins — both computed the same pre-derived stream.
        scenario = rng_scenario(measure=_slow_draw, slow_a=1, sleep_s=0.4)
        serial = SweepRunner(
            rng_scenario(measure=_slow_draw, slow_a=1, sleep_s=0.0),
            rng=SEED,
            backend="serial",
        ).run()
        report = launch_sweep(
            scenario, rng=SEED, n_workers=2, shard_points=2, shard_deadline_s=0.05
        )
        assert report.stragglers >= 1
        assert report.result.values == serial.values


class TestFailureModes:
    def test_deterministic_measure_error_exhausts_retries(self):
        scenario = rng_scenario(measure=_explode, bad_a=2)
        with pytest.raises(LauncherError, match="gave up after"):
            launch_sweep(scenario, rng=SEED, n_workers=2, max_retries=1)

    def test_launcher_error_carries_structured_provenance(self):
        # One worker serializes completion order: the first shard (a=1)
        # lands before the second (a=2) fails, so the partial result is
        # deterministic salvage, not a race.
        scenario = rng_scenario(measure=_explode, bad_a=2)
        with pytest.raises(LauncherError) as excinfo:
            launch_sweep(
                scenario, rng=SEED, n_workers=1, shard_points=2, max_retries=0
            )
        error = excinfo.value
        assert error.scenario == "launch"
        assert error.shard_id >= 0
        assert error.point_range == (2, 4)  # the a=2 row, grid order
        assert error.attempts == 1
        assert error.exit_codes == ()  # the worker erred, it didn't die
        partial = error.partial_result
        assert partial is not None
        assert [p.index for p in partial.points] == [0, 1]
        assert partial.values == [1, 1]  # _explode returns point["a"]

    def test_unpicklable_scenario_rejected_up_front(self):
        closure = Scenario(
            name="closure",
            sweep=SweepSpec.grid(a=(1, 2)),
            measure=lambda run: run.point["a"],
            cache_ambient=False,
        )
        with pytest.raises(ConfigurationError, match="shipped"):
            launch_sweep(closure, rng=SEED)

    def test_bad_parameters_rejected(self):
        for kwargs in (
            dict(n_workers=0),
            dict(max_retries=-1),
            dict(shard_deadline_s=0.0),
            dict(shard_points=0),
        ):
            with pytest.raises(ConfigurationError):
                launch_sweep(rng_scenario(), rng=SEED, **kwargs)


class TestSharding:
    def test_default_shard_points_targets_four_per_worker(self, monkeypatch):
        monkeypatch.delenv(SHARD_POINTS_ENV_VAR, raising=False)
        assert default_shard_points(n_points=64, n_workers=2) == 8
        assert default_shard_points(n_points=3, n_workers=8) == 1

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv(SHARD_POINTS_ENV_VAR, "5")
        assert default_shard_points(n_points=64, n_workers=2) == 5
        monkeypatch.setenv(SHARD_POINTS_ENV_VAR, "0")
        with pytest.raises(ConfigurationError):
            default_shard_points(n_points=64, n_workers=2)

    def test_shard_geometry(self):
        shard = Shard(shard_id=0, start=2, stop=5)
        assert shard.n_points == 3
        assert shard.attempt == 0


class TestSharedStore:
    def test_warm_rerun_performs_zero_syntheses(self, tmp_path):
        cold = launch_sweep(
            fig09_scenario(), rng=SEED, n_workers=2, shard_points=1,
            cache_dir=str(tmp_path),
        )
        assert cold.warm_syntheses > 0
        assert cold.store_dir == str(tmp_path)

        warm = launch_sweep(
            fig09_scenario(), rng=SEED, n_workers=2, shard_points=1,
            cache_dir=str(tmp_path),
        )
        assert warm.warm_syntheses == 0
        assert warm.result.cache_stats["syntheses"] == 0
        assert warm.result.cache_stats["disk_hits"] > 0
        for ours, reference in zip(warm.result.values, cold.result.values):
            assert np.array_equal(ours, reference)


class TestRetryPolicy:
    def test_defaults_match_the_legacy_knob(self):
        assert RetryPolicy().max_retries == 2
        assert RetryPolicy().backoff_base_s == 0.0  # immediate re-dispatch
        assert RetryPolicy(max_retries=7).backoff_s(0, 4, 3) == 0.0

    def test_backoff_is_exponential_capped_and_deterministic(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.3,
            jitter_frac=0.0,
        )
        assert policy.backoff_s(0, 4, 0) == pytest.approx(0.1)
        assert policy.backoff_s(0, 4, 1) == pytest.approx(0.2)
        assert policy.backoff_s(0, 4, 5) == pytest.approx(0.3)  # capped
        jittered = RetryPolicy(backoff_base_s=0.1, jitter_frac=0.5)
        # Deterministic jitter: same range + attempt -> same delay,
        # different ranges de-synchronize.
        assert jittered.backoff_s(0, 4, 1) == jittered.backoff_s(0, 4, 1)
        assert jittered.backoff_s(0, 4, 1) != jittered.backoff_s(4, 8, 1)

    def test_validation_rejects_nonsense(self):
        for bad in (
            RetryPolicy(max_retries=-1),
            RetryPolicy(backoff_base_s=-0.1),
            RetryPolicy(backoff_factor=0.5),
            RetryPolicy(jitter_frac=1.5),
            RetryPolicy(job_deadline_s=0.0),
        ):
            with pytest.raises(ConfigurationError):
                bad.validate()
        with pytest.raises(ConfigurationError):
            launch_sweep(
                rng_scenario(), rng=SEED,
                retry_policy=RetryPolicy(max_retries=-2),
            )

    def test_backoff_delays_the_retry_but_not_the_bits(self):
        serial = SweepRunner(rng_scenario(), rng=SEED, backend="serial").run()
        report = launch_sweep(
            rng_scenario(), rng=SEED, n_workers=2, shard_points=3,
            retry_policy=RetryPolicy(max_retries=2, backoff_base_s=0.05),
        )
        assert report.result.values == serial.values


class TestDegradation:
    def test_job_deadline_salvages_in_process(self):
        # A stalling row would blow any tight wall-clock budget; the
        # deadline fires and the parent finishes the grid serially —
        # complete, bit-identical, flagged degraded.
        serial = SweepRunner(
            rng_scenario(measure=_slow_draw, slow_a=1, sleep_s=0.0),
            rng=SEED, backend="serial",
        ).run()
        report = launch_sweep(
            rng_scenario(measure=_slow_draw, slow_a=1, sleep_s=0.8),
            rng=SEED, n_workers=2, shard_points=2,
            retry_policy=RetryPolicy(job_deadline_s=0.2),
        )
        assert report.degraded
        assert report.degraded_points >= 1
        assert report.result.values == serial.values

    def test_clean_run_is_not_degraded(self):
        report = launch_sweep(rng_scenario(), rng=SEED, n_workers=2)
        assert not report.degraded
        assert report.degraded_points == 0
        assert report.resumed_points == 0


class TestDistributedDriver:
    @exact_numerics_only
    def test_driver_matches_fig09_run(self):
        kwargs = dict(
            distances_ft=(2, 4), mrc_factors=(1, 2), n_bits=40, rng=SEED
        )
        from repro.experiments import distributed

        reference = fig09.run(**kwargs)
        ours = distributed.run(n_workers=2, **kwargs)
        telemetry = ours.pop("launcher")
        assert ours == reference
        assert telemetry["n_workers"] == 2
        assert telemetry["wall_s"] > 0

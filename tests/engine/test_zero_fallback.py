"""Zero-fallback coverage of the batched backend.

The acceptance bar for the vectorized sweep path: on the paper grids —
Fig. 9 (MRC receptions), Fig. 10/13 (stereo decode), Fig. 12
(cooperative listening) and the deployment scale-out — running with
``REPRO_SWEEP_BACKEND=batched`` takes **zero** per-point fallbacks
(:attr:`~repro.engine.results.SweepResult.n_fallbacks`), and a fading
grid — the case that used to fall back 100% — is bit-identical across
all four backends. CI runs this file as a fast, non-timing gate so a
fallback regression is caught without relying on wall-clock numbers.
"""

import numpy as np
import pytest

from repro.audio.tones import tone
from repro.channel.fading import MotionFadingSpec
from repro.constants import AUDIO_RATE_HZ
from repro.data.fdm import FdmFskModem
from repro.engine import AmbientCache, Scenario, SweepRunner, SweepSpec
from repro.experiments import deployment_scale
from repro.experiments import fig09_mrc as fig09
from repro.experiments import fig10_stereo_ber as fig10
from repro.experiments import fig12_pesq_cooperative as fig12
from repro.experiments import fig13_pesq_stereo as fig13
from repro.utils.env import fast_numerics

exact_numerics_only = pytest.mark.skipif(
    fast_numerics(),
    reason="bit-identity is an exact-numerics contract; REPRO_NUMERICS=fast "
    "is gated by the tolerance golden tier",
)


SEED = 2017


def _run(scenario, backend, **kwargs):
    return SweepRunner(
        scenario, rng=SEED, cache=AmbientCache(), backend=backend, **kwargs
    ).run()


def _mean_abs(run):
    return float(np.mean(np.abs(run.received.mono)))


def build_fading_scenario(name: str = "fade09") -> Scenario:
    """A Fig. 9-style link-budget grid with body-motion fading.

    Declarative :class:`MotionFadingSpec` fading on every link — the
    scenario shape that, before the zero-fallback backend, dropped every
    point to the serial path.
    """
    payload = tone(1000.0, 0.1, AUDIO_RATE_HZ, amplitude=0.9)
    return Scenario(
        name=name,
        sweep=SweepSpec.grid(distance_ft=(2, 4, 8), rep=(0, 1)),
        prepare=lambda gen: {"payload": payload},
        base_chain={
            "program": "silence",
            "power_dbm": -40.0,
            "stereo_decode": False,
            "back_amplitude": 0.25,
            "fading": MotionFadingSpec("running"),
        },
        chain_axes=("distance_ft",),
        payload="payload",
        measure=_mean_abs,
    )


class TestZeroFallbackGrids:
    @exact_numerics_only
    def test_fig09_grid_fully_vectorizes(self):
        scenario = fig09.build_scenario(
            FdmFskModem(symbol_rate=200), distances_ft=(4, 8), max_factor=2, n_bits=48
        )
        serial = _run(scenario, "serial")
        batched = _run(scenario, "batched")
        assert batched.n_fallbacks == 0
        assert batched.backend == "batched[4/4]"
        assert all(
            np.array_equal(b, s) for b, s in zip(batched.values, serial.values)
        )

    def test_fig10_grid_fully_vectorizes(self):
        scenario = fig10.build_scenario(
            "1.6k", FdmFskModem(symbol_rate=200), distances_ft=(2, 4), n_bits=48
        )
        batched = _run(scenario, "batched")
        assert batched.n_fallbacks == 0
        assert batched.backend == "batched[4/4]"

    def test_fig12_grid_reports_zero_fallbacks(self):
        # Fig. 12 is measure-driven (the two-phone cancellation happens
        # inside the measure), so the batched backend has no declared
        # transmission to vectorize — and, by the same token, none of
        # its points count as fallbacks.
        scenario = fig12.build_scenario(
            powers_dbm=(-30.0,), distances_ft=(4, 8), duration_s=0.3
        )
        serial = _run(scenario, "serial")
        batched = _run(scenario, "batched")
        assert batched.n_fallbacks == 0
        assert batched.values == serial.values

    def test_fig13_grid_fully_vectorizes(self):
        scenario = fig13.build_scenario(
            "stereo_station", powers_dbm=(-20.0, -40.0), distances_ft=(1, 4), duration_s=0.2
        )
        batched = _run(scenario, "batched")
        assert batched.n_fallbacks == 0
        assert batched.backend == "batched[4/4]"

    @exact_numerics_only
    def test_deployment_scale_grid_reports_zero_fallbacks(self):
        deployment = deployment_scale.build_deployment(device_counts=(1, 2))
        scenario = deployment.compile()
        serial = _run(scenario, "serial")
        batched = _run(scenario, "batched")
        assert batched.n_fallbacks == 0
        assert batched.values == serial.values


class TestFadingGridAllBackends:
    @pytest.fixture(scope="class")
    def by_backend(self):
        scenario = build_fading_scenario()
        return {
            backend: _run(scenario, backend)
            for backend in ("serial", "thread", "process", "batched", "auto")
        }

    @exact_numerics_only
    def test_bit_identical_across_all_backends(self, by_backend):
        serial = by_backend["serial"]
        for backend in ("thread", "process", "batched", "auto"):
            assert by_backend[backend].values == serial.values, backend

    def test_batched_takes_zero_fading_fallbacks(self, by_backend):
        batched = by_backend["batched"]
        assert batched.n_fallbacks == 0
        assert batched.backend == "batched[6/6]"

    def test_fading_actually_changed_the_link(self, by_backend):
        # Guard against a silently-ignored fading spec: the same grid
        # (same name, hence identical per-point noise streams) without
        # fading must measure differently.
        scenario = build_fading_scenario()
        scenario.base_chain = dict(scenario.base_chain)
        del scenario.base_chain["fading"]
        assert _run(scenario, "serial").values != by_backend["serial"].values

"""Job journal: durable append, torn-line tolerance, replay, recovery.

The acceptance bar is the crash-recovery contract: kill a service
mid-job (simulated at the harness level by truncating its journal to a
prefix — exactly what a crash leaves behind), start a new service over
the same journal directory and cache, and the job completes with **zero
recomputed syntheses** and a bit-identical result — journaled-complete
shards are reloaded, only missing ranges re-launch.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.data.fdm import FdmFskModem
from repro.engine import Scenario, SweepRunner, SweepSpec, SweepService, launch_sweep
from repro.engine.journal import (
    JOURNAL_VERSION,
    JobJournal,
    indices_to_ranges,
    ranges_to_indices,
)
from repro.errors import ConfigurationError, JournalError
from repro.experiments import fig09_mrc as fig09

SEED = 2017


def _draw(run):
    return (run.point["a"], run.point["b"], float(run.rng.random()))


def rng_scenario() -> Scenario:
    return Scenario(
        name="jrnl",
        sweep=SweepSpec.grid(a=(1, 2, 3), b=(10.0, 20.0)),
        measure=_draw,
        cache_ambient=False,
    )


def fig09_scenario() -> Scenario:
    return fig09.build_scenario(
        FdmFskModem(symbol_rate=200),
        distances_ft=(2, 4),
        max_factor=2,
        n_bits=40,
    )


class TestRanges:
    def test_round_trip(self):
        indices = [0, 1, 2, 5, 7, 8]
        ranges = indices_to_ranges(indices)
        assert ranges == [(0, 3), (5, 6), (7, 9)]
        assert ranges_to_indices(ranges) == indices

    def test_empty(self):
        assert indices_to_ranges([]) == []
        assert ranges_to_indices([]) == []


class TestAppendReplay:
    def test_typed_records_fold_back(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.job_submitted("job-0001", b"blob", 2017, "jrnl", 6)
        journal.shard_dispatched("job-0001", 0, 2, 0, worker=1)
        journal.shard_completed("job-0001", [0, 1], ["a", "b"], 0.5)
        journal.shard_retried("job-0001", 2, 4, 0, "worker died\ntraceback...")
        journal.shard_completed("job-0001", [2, 3, 4, 5], list("cdef"), 0.7)
        journal.job_done("job-0001")

        job = journal.replay_job("job-0001")
        assert job.scenario_name == "jrnl"
        assert job.n_points == 6
        assert job.scenario_blob == b"blob"
        assert job.rng() == 2017
        assert job.values == {0: "a", 1: "b", 2: "c", 3: "d", 4: "e", 5: "f"}
        assert job.retries == 1
        assert job.state == "done"
        assert job.finished

    def test_replay_folds_every_job_in_the_directory(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.job_submitted("a-0001", b"", None, "a", 1)
        journal.job_submitted("b-0001", b"", None, "b", 1)
        journal.job_failed("b-0001", "boom")
        jobs = journal.replay()
        assert sorted(jobs) == ["a-0001", "b-0001"]
        assert not jobs["a-0001"].finished
        assert jobs["b-0001"].state == "failed"
        assert jobs["b-0001"].error == "boom"

    def test_unknown_job_raises(self, tmp_path):
        with pytest.raises(JournalError, match="ghost"):
            JobJournal(tmp_path).replay_job("ghost")

    def test_job_id_is_sanitized_for_the_filesystem(self, tmp_path):
        journal = JobJournal(tmp_path)
        path = journal.path_for("fig/09:weird id")
        assert path.parent == tmp_path
        assert path.name == "fig_09_weird_id.jsonl"
        with pytest.raises(ConfigurationError):
            journal.path_for("///")

    def test_values_survive_numpy_payloads(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.job_submitted("np-0001", b"", None, "np", 2)
        arrays = [np.arange(4, dtype=complex), np.ones(3)]
        journal.shard_completed("np-0001", [0, 1], arrays, 0.1)
        values = journal.replay_job("np-0001").values
        assert np.array_equal(values[0], arrays[0])
        assert np.array_equal(values[1], arrays[1])


class TestCorruption:
    def test_torn_final_line_is_tolerated(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.job_submitted("torn-0001", b"", None, "torn", 4)
        journal.shard_completed("torn-0001", [0, 1], ["a", "b"], 0.1)
        with open(journal.path_for("torn-0001"), "ab") as handle:
            handle.write(b'{"kind":"shard-done","ranges":[[2,')  # the crash
        job = journal.replay_job("torn-0001")
        assert job.values == {0: "a", 1: "b"}
        assert not job.finished

    def test_append_after_torn_tail_repairs_it_first(self, tmp_path):
        # A restarted service appends to a journal whose last line was
        # torn by the crash; the fragment must be dropped, not glued to
        # the next record (which would be interior corruption).
        journal = JobJournal(tmp_path)
        journal.job_submitted("heal-0001", b"", None, "heal", 2)
        with open(journal.path_for("heal-0001"), "ab") as handle:
            handle.write(b'{"kind":"shard-d')
        fresh = JobJournal(tmp_path)  # the next incarnation
        fresh.shard_completed("heal-0001", [0], ["a"], 0.1)
        fresh.job_done("heal-0001")
        job = fresh.replay_job("heal-0001")
        assert job.values == {0: "a"}
        assert job.finished

    def test_interior_corruption_raises(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.job_submitted("bad-0001", b"", None, "bad", 4)
        path = journal.path_for("bad-0001")
        with open(path, "ab") as handle:
            handle.write(b"garbage, not json\n")
        journal.job_done("bad-0001")  # a valid line after the damage
        with pytest.raises(JournalError, match="corrupt"):
            journal.replay_job("bad-0001")

    def test_future_version_refused(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append("v-0001", {"kind": "done"})
        record = json.dumps({"kind": "done", "v": JOURNAL_VERSION + 1})
        with open(journal.path_for("v-0001"), "ab") as handle:
            handle.write(record.encode() + b"\n")
        journal.job_done("v-0001")  # keeps the bad line non-final
        with pytest.raises(JournalError, match="version"):
            journal.replay_job("v-0001")

    def test_unknown_kind_refused(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append("k-0001", {"kind": "quantum-leap"})
        journal.job_done("k-0001")
        with pytest.raises(JournalError, match="quantum-leap"):
            journal.replay_job("k-0001")


class TestLauncherJournaling:
    def test_launch_journals_dispatch_completion_and_values(self, tmp_path):
        journal = JobJournal(tmp_path)
        serial = SweepRunner(rng_scenario(), rng=SEED, backend="serial").run()
        launch_sweep(
            rng_scenario(), rng=SEED, n_workers=2, shard_points=2,
            journal=journal, job_id="jrnl-0001",
        )
        job = journal.replay_job("jrnl-0001")
        assert sorted(job.values) == list(range(6))
        assert [job.values[i] for i in range(6)] == serial.values
        # Terminal state is the service's record, not the launcher's.
        assert not job.finished

    def test_journal_requires_job_id(self, tmp_path):
        with pytest.raises(ConfigurationError, match="job_id"):
            launch_sweep(rng_scenario(), rng=SEED, journal=JobJournal(tmp_path))

    def test_resume_skips_journaled_points_entirely(self):
        # Sentinel values prove the contract: resumed points are
        # *reloaded*, never recomputed — if the launcher re-executed
        # them, the sentinels would be overwritten by real values.
        serial = SweepRunner(rng_scenario(), rng=SEED, backend="serial").run()
        sentinels = {0: "sentinel-0", 3: "sentinel-3"}
        report = launch_sweep(
            rng_scenario(), rng=SEED, n_workers=2, shard_points=2,
            resume_values=sentinels,
        )
        assert report.resumed_points == 2
        values = report.result.values
        assert values[0] == "sentinel-0"
        assert values[3] == "sentinel-3"
        for index in (1, 2, 4, 5):
            assert values[index] == serial.values[index]

    def test_full_resume_forks_no_workers(self):
        serial = SweepRunner(rng_scenario(), rng=SEED, backend="serial").run()
        report = launch_sweep(
            rng_scenario(), rng=SEED, n_workers=2,
            resume_values=dict(enumerate(serial.values)),
        )
        assert report.resumed_points == 6
        assert report.result.values == serial.values
        assert report.failures == 0
        assert report.exit_codes == ()

    def test_resume_rejects_out_of_grid_indices(self):
        with pytest.raises(ConfigurationError, match="outside the grid"):
            launch_sweep(rng_scenario(), rng=SEED, resume_values={99: "x"})


def _crash_journal_to_prefix(journal: JobJournal, job_id: str, keep_shard_done: int):
    """Rewrite a finished job's journal to what a crash would leave:
    the submit record, the first ``keep_shard_done`` completions, no
    terminal record, and a torn final line."""
    path = journal.path_for(job_id)
    lines = path.read_bytes().splitlines()
    kept, done_seen = [], 0
    for line in lines:
        record = json.loads(line)
        if record["kind"] in ("done", "failed", "cancelled"):
            continue
        if record["kind"] == "shard-done":
            if done_seen >= keep_shard_done:
                continue
            done_seen += 1
        kept.append(line)
    payload = b"\n".join(kept) + b"\n" + b'{"kind":"shard-d'  # torn append
    path.write_bytes(payload)
    return done_seen


class TestServiceRecovery:
    """The acceptance test: restart over the same journal + cache dirs."""

    def test_recovered_job_completes_without_recomputing(self, tmp_path):
        journal_dir = tmp_path / "jobs"
        cache_dir = tmp_path / "spill"
        cache_dir.mkdir()

        async def first_incarnation():
            service = SweepService(
                n_workers=2, shard_points=1,
                cache_dir=str(cache_dir), journal_dir=str(journal_dir),
            )
            try:
                job_id = await service.submit(fig09_scenario(), rng=SEED)
                report = await service.fetch(job_id)
                return job_id, report
            finally:
                await service.close()

        job_id, reference = asyncio.run(first_incarnation())
        journal = JobJournal(journal_dir)
        assert journal.replay_job(job_id).finished

        # Simulate the crash: the journal ends mid-job, two of the four
        # single-point shards durably complete, the rest never reported.
        kept = _crash_journal_to_prefix(journal, job_id, keep_shard_done=2)
        assert kept == 2
        assert not journal.replay_job(job_id).finished

        async def second_incarnation():
            service = SweepService(
                n_workers=2, shard_points=1,
                cache_dir=str(cache_dir), journal_dir=str(journal_dir),
            )
            try:
                resumed = await service.recover()
                assert resumed == [job_id]
                report = await service.fetch(job_id)
                return report, service.status(job_id)
            finally:
                await service.close()

        report, status = asyncio.run(second_incarnation())
        # Zero recomputed syntheses: journaled points reloaded, missing
        # ranges re-ran against the still-warm store.
        assert report.resumed_points == 2
        assert report.warm_syntheses == 0
        assert report.result.cache_stats["syntheses"] == 0
        assert status.state == "done"
        assert status.resumed_points == 2
        # Bit-identical to the uninterrupted first run.
        assert len(report.result.values) == len(reference.result.values)
        for ours, original in zip(report.result.values, reference.result.values):
            assert np.array_equal(ours, original)
        # The journal now records the second incarnation's completion.
        assert journal.replay_job(job_id).finished

    def test_finished_jobs_are_not_resumed(self, tmp_path):
        async def drive():
            service = SweepService(
                n_workers=1, journal_dir=str(tmp_path / "jobs"),
            )
            try:
                job_id = await service.submit(rng_scenario(), rng=SEED)
                await service.fetch(job_id)
            finally:
                await service.close()

            restarted = SweepService(
                n_workers=1, journal_dir=str(tmp_path / "jobs"),
            )
            try:
                return await restarted.recover()
            finally:
                await restarted.close()

        assert asyncio.run(drive()) == []

    def test_restarted_service_mints_fresh_job_ids(self, tmp_path):
        # A restarted counter must not collide with previous-incarnation
        # journal files, or two jobs' records interleave in one file.
        async def drive():
            first = SweepService(n_workers=1, journal_dir=str(tmp_path / "jobs"))
            try:
                a = await first.submit(rng_scenario(), rng=SEED)
                await first.fetch(a)
            finally:
                await first.close()

            second = SweepService(n_workers=1, journal_dir=str(tmp_path / "jobs"))
            try:
                b = await second.submit(rng_scenario(), rng=SEED)
                await second.fetch(b)
                return a, b
            finally:
                await second.close()

        a, b = asyncio.run(drive())
        assert a != b
        journal = JobJournal(tmp_path / "jobs")
        assert len(journal.job_ids()) == 2
        assert all(journal.replay_job(job).finished for job in journal.job_ids())

    def test_recover_without_journal_is_empty(self):
        async def drive():
            service = SweepService(n_workers=1)
            try:
                return await service.recover()
            finally:
                await service.close()

        assert asyncio.run(drive()) == []

"""Sharded sweeps: ``point_slice`` execution + ``SweepResult.merge``.

The kernel of the ROADMAP's sharded-sweeps item: a shard is a contiguous
slice of ``spec.points()`` executed with the same pre-derived seeds, so
shards run anywhere (any backend, any machine sharing the cache dir) and
merge back into a result bit-identical to the whole-grid run.
"""

import pytest

from repro.engine import AmbientCache, Scenario, SweepResult, SweepRunner, SweepSpec
from repro.errors import ConfigurationError

SEED = 2017


def _draw(run):
    """Measure whose value exposes the point's private stream."""
    return (run.point["a"], run.point["b"], float(run.rng.random()))


def rng_scenario() -> Scenario:
    return Scenario(
        name="shards",
        sweep=SweepSpec.grid(a=(1, 2, 3), b=(10.0, 20.0)),
        measure=_draw,
        cache_ambient=False,
    )


class TestPointSlice:
    def test_shards_reproduce_the_whole_grid_streams(self):
        whole = SweepRunner(rng_scenario(), rng=SEED).run()
        first = SweepRunner(rng_scenario(), rng=SEED).run(point_slice=(0, 2))
        rest = SweepRunner(rng_scenario(), rng=SEED).run(point_slice=(2, 6))
        assert first.values == whole.values[:2]
        assert rest.values == whole.values[2:]
        assert [p.index for p in first.points] == [0, 1]
        assert [p.index for p in rest.points] == [2, 3, 4, 5]

    def test_invalid_slices_rejected(self):
        runner = SweepRunner(rng_scenario(), rng=SEED)
        for bad in ((2, 2), (-1, 3), (0, 7), (3, 1)):
            with pytest.raises(ConfigurationError):
                runner.run(point_slice=bad)
        with pytest.raises(ConfigurationError):
            runner.run(point_slice=(0.0, 2))

    def test_numpy_integer_bounds_accepted(self):
        import numpy as np

        whole = SweepRunner(rng_scenario(), rng=SEED).run()
        shard = SweepRunner(rng_scenario(), rng=SEED).run(
            point_slice=(np.int64(0), np.int64(2))
        )
        assert shard.values == whole.values[:2]

    def test_malformed_slice_containers_rejected(self):
        runner = SweepRunner(rng_scenario(), rng=SEED)
        for bad in ((0, 2, 4), 5, (1,)):
            with pytest.raises(ConfigurationError):
                runner.run(point_slice=bad)

    def test_partial_result_refuses_series_slicing(self):
        shard = SweepRunner(rng_scenario(), rng=SEED).run(point_slice=(0, 3))
        with pytest.raises(KeyError, match="merge"):
            shard.series(along="a", b=10.0)

    def test_single_point_shard_executes_serially(self):
        result = SweepRunner(rng_scenario(), rng=SEED, backend="thread").run(
            point_slice=(3, 4)
        )
        assert result.backend == "serial"
        assert len(result) == 1


class TestMerge:
    def test_round_trip_equals_whole_grid_run(self):
        whole = SweepRunner(rng_scenario(), rng=SEED).run()
        shards = [
            SweepRunner(rng_scenario(), rng=SEED).run(point_slice=bounds)
            for bounds in ((0, 2), (2, 5), (5, 6))
        ]
        # Shard arrival order must not matter.
        merged = SweepResult.merge(shards[2], shards[0], shards[1])
        assert merged.values == whole.values
        assert [p.index for p in merged.points] == list(range(6))
        assert merged.spec.axes == whole.spec.axes
        assert merged.backend == "merged[3]"
        assert merged.series(along="a", b=10.0) == whole.series(along="a", b=10.0)

    def test_merge_sums_metadata(self):
        shards = [
            SweepRunner(rng_scenario(), rng=SEED).run(point_slice=bounds)
            for bounds in ((0, 3), (3, 6))
        ]
        merged = SweepResult.merge(*shards)
        assert merged.elapsed_s == pytest.approx(sum(s.elapsed_s for s in shards))
        assert merged.cache_stats is None  # caching was off in every shard

    def test_merge_with_chain_scenario_and_shared_cache(self):
        from repro.experiments import fig08_ber_overlay as fig08

        def runner():
            # A small Fig. 8-style grid, rebuilt per call so each run
            # derives its streams from a fresh seed-2017 generator.
            from repro.data.bits import random_bits
            from repro.engine import AxisRef
            from repro.utils.rand import child_generator

            modem = fig08.make_modem("100bps")

            def prepare(gen):
                bits = random_bits(24, child_generator(gen, "payload", "100bps"))
                return {"bits": bits, "waveform": modem.modulate(bits)}

            scenario = Scenario(
                name="fig08",
                sweep=SweepSpec.grid(power_dbm=(-55.0, -60.0), distance_ft=(8, 16)),
                prepare=prepare,
                base_chain={"program": "news", "stereo_decode": False},
                chain_axes=("power_dbm", "distance_ft"),
                rng_keys=("100bps", AxisRef("power_dbm"), AxisRef("distance_ft")),
                payload="waveform",
                measure=fig08.score_ber,
                measure_params={"modem": modem},
            )
            return scenario

        cache = AmbientCache()
        whole = SweepRunner(runner(), rng=SEED, cache=cache).run()
        shard_a = SweepRunner(runner(), rng=SEED, cache=cache).run(point_slice=(0, 2))
        shard_b = SweepRunner(runner(), rng=SEED, cache=cache).run(point_slice=(2, 4))
        merged = SweepResult.merge(shard_a, shard_b)
        assert merged.values == whole.values
        assert merged.cache_stats is not None

    def test_overlapping_shards_rejected(self):
        a = SweepRunner(rng_scenario(), rng=SEED).run(point_slice=(0, 3))
        b = SweepRunner(rng_scenario(), rng=SEED).run(point_slice=(2, 6))
        with pytest.raises(ConfigurationError, match="more than one shard"):
            SweepResult.merge(a, b)

    def test_incomplete_coverage_rejected(self):
        a = SweepRunner(rng_scenario(), rng=SEED).run(point_slice=(0, 3))
        with pytest.raises(ConfigurationError, match="cover"):
            SweepResult.merge(a)

    def test_mismatched_specs_rejected(self):
        a = SweepRunner(rng_scenario(), rng=SEED).run()
        other = Scenario(
            name="other",
            sweep=SweepSpec.grid(a=(1, 2)),
            measure=lambda run: run.point["a"],
            cache_ambient=False,
        )
        b = SweepRunner(other, rng=SEED).run()
        with pytest.raises(ConfigurationError, match="different sweeps"):
            SweepResult.merge(a, b)

    def test_same_axes_different_scenarios_rejected(self):
        # Two unrelated experiments can share a grid shape; their shards
        # must not stitch into one mixed-up "whole" result.
        imposter = Scenario(
            name="imposter",
            sweep=SweepSpec.grid(a=(1, 2, 3), b=(10.0, 20.0)),
            measure=_draw,
            cache_ambient=False,
        )
        a = SweepRunner(rng_scenario(), rng=SEED).run(point_slice=(0, 3))
        b = SweepRunner(imposter, rng=SEED).run(point_slice=(3, 6))
        with pytest.raises(ConfigurationError, match="different scenarios"):
            SweepResult.merge(a, b)

    def test_empty_merge_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepResult.merge()

"""Sharded sweeps: ``point_slice`` execution + ``SweepResult.merge``.

The kernel of the ROADMAP's sharded-sweeps item: a shard is a contiguous
slice of ``spec.points()`` executed with the same pre-derived seeds, so
shards run anywhere (any backend, any machine sharing the cache dir) and
merge back into a result bit-identical to the whole-grid run.
"""

import json

import pytest

from repro.audio.tones import tone
from repro.constants import AUDIO_RATE_HZ
from repro.engine import (
    AmbientCache,
    CalibrationConstants,
    PayloadSelector,
    Scenario,
    SweepResult,
    SweepRunner,
    SweepSpec,
)
from repro.errors import ConfigurationError
from repro.utils.env import fast_numerics

exact_numerics_only = pytest.mark.skipif(
    fast_numerics(),
    reason="bit-identity is an exact-numerics contract; REPRO_NUMERICS=fast "
    "is gated by the tolerance golden tier",
)


SEED = 2017


def _draw(run):
    """Measure whose value exposes the point's private stream."""
    return (run.point["a"], run.point["b"], float(run.rng.random()))


def rng_scenario() -> Scenario:
    return Scenario(
        name="shards",
        sweep=SweepSpec.grid(a=(1, 2, 3), b=(10.0, 20.0)),
        measure=_draw,
        cache_ambient=False,
    )


class TestPointSlice:
    def test_shards_reproduce_the_whole_grid_streams(self):
        whole = SweepRunner(rng_scenario(), rng=SEED).run()
        first = SweepRunner(rng_scenario(), rng=SEED).run(point_slice=(0, 2))
        rest = SweepRunner(rng_scenario(), rng=SEED).run(point_slice=(2, 6))
        assert first.values == whole.values[:2]
        assert rest.values == whole.values[2:]
        assert [p.index for p in first.points] == [0, 1]
        assert [p.index for p in rest.points] == [2, 3, 4, 5]

    def test_invalid_slices_rejected(self):
        runner = SweepRunner(rng_scenario(), rng=SEED)
        for bad in ((-1, 3), (0, 7), (3, 1)):
            with pytest.raises(ConfigurationError):
                runner.run(point_slice=bad)
        with pytest.raises(ConfigurationError):
            runner.run(point_slice=(0.0, 2))

    def test_empty_shard_is_valid(self):
        # A launcher re-slicing a shard can produce a degenerate empty
        # range; start == stop must execute as a no-op, not crash.
        empty = SweepRunner(rng_scenario(), rng=SEED).run(point_slice=(2, 2))
        assert len(empty) == 0
        assert empty.values == []
        assert empty.points == []

    def test_empty_shard_merges_as_a_no_op(self):
        whole = SweepRunner(rng_scenario(), rng=SEED).run()
        shards = [
            SweepRunner(rng_scenario(), rng=SEED).run(point_slice=bounds)
            for bounds in ((0, 3), (3, 3), (3, 6))
        ]
        merged = SweepResult.merge(*shards)
        assert merged.values == whole.values
        assert [p.index for p in merged.points] == list(range(6))

    def test_numpy_integer_bounds_accepted(self):
        import numpy as np

        whole = SweepRunner(rng_scenario(), rng=SEED).run()
        shard = SweepRunner(rng_scenario(), rng=SEED).run(
            point_slice=(np.int64(0), np.int64(2))
        )
        assert shard.values == whole.values[:2]

    def test_malformed_slice_containers_rejected(self):
        runner = SweepRunner(rng_scenario(), rng=SEED)
        for bad in ((0, 2, 4), 5, (1,)):
            with pytest.raises(ConfigurationError):
                runner.run(point_slice=bad)

    def test_partial_result_refuses_series_slicing(self):
        shard = SweepRunner(rng_scenario(), rng=SEED).run(point_slice=(0, 3))
        with pytest.raises(KeyError, match="merge"):
            shard.series(along="a", b=10.0)

    def test_single_point_shard_executes_serially(self):
        result = SweepRunner(rng_scenario(), rng=SEED, backend="thread").run(
            point_slice=(3, 4)
        )
        assert result.backend == "serial"
        assert len(result) == 1


class TestMerge:
    def test_round_trip_equals_whole_grid_run(self):
        whole = SweepRunner(rng_scenario(), rng=SEED).run()
        shards = [
            SweepRunner(rng_scenario(), rng=SEED).run(point_slice=bounds)
            for bounds in ((0, 2), (2, 5), (5, 6))
        ]
        # Shard arrival order must not matter.
        merged = SweepResult.merge(shards[2], shards[0], shards[1])
        assert merged.values == whole.values
        assert [p.index for p in merged.points] == list(range(6))
        assert merged.spec.axes == whole.spec.axes
        assert merged.backend == "merged[3]"
        assert merged.series(along="a", b=10.0) == whole.series(along="a", b=10.0)

    def test_merge_sums_metadata(self):
        shards = [
            SweepRunner(rng_scenario(), rng=SEED).run(point_slice=bounds)
            for bounds in ((0, 3), (3, 6))
        ]
        merged = SweepResult.merge(*shards)
        assert merged.elapsed_s == pytest.approx(sum(s.elapsed_s for s in shards))
        assert merged.cache_stats is None  # caching was off in every shard

    @exact_numerics_only
    def test_merge_with_chain_scenario_and_shared_cache(self):
        from repro.experiments import fig08_ber_overlay as fig08

        def runner():
            # A small Fig. 8-style grid, rebuilt per call so each run
            # derives its streams from a fresh seed-2017 generator.
            from repro.data.bits import random_bits
            from repro.engine import AxisRef
            from repro.utils.rand import child_generator

            modem = fig08.make_modem("100bps")

            def prepare(gen):
                bits = random_bits(24, child_generator(gen, "payload", "100bps"))
                return {"bits": bits, "waveform": modem.modulate(bits)}

            scenario = Scenario(
                name="fig08",
                sweep=SweepSpec.grid(power_dbm=(-55.0, -60.0), distance_ft=(8, 16)),
                prepare=prepare,
                base_chain={"program": "news", "stereo_decode": False},
                chain_axes=("power_dbm", "distance_ft"),
                rng_keys=("100bps", AxisRef("power_dbm"), AxisRef("distance_ft")),
                payload="waveform",
                measure=fig08.score_ber,
                measure_params={"modem": modem},
            )
            return scenario

        cache = AmbientCache()
        whole = SweepRunner(runner(), rng=SEED, cache=cache).run()
        shard_a = SweepRunner(runner(), rng=SEED, cache=cache).run(point_slice=(0, 2))
        shard_b = SweepRunner(runner(), rng=SEED, cache=cache).run(point_slice=(2, 4))
        merged = SweepResult.merge(shard_a, shard_b)
        assert merged.values == whole.values
        assert merged.cache_stats is not None

    def test_overlapping_shards_rejected(self):
        a = SweepRunner(rng_scenario(), rng=SEED).run(point_slice=(0, 3))
        b = SweepRunner(rng_scenario(), rng=SEED).run(point_slice=(2, 6))
        with pytest.raises(ConfigurationError, match="more than one shard"):
            SweepResult.merge(a, b)

    def test_incomplete_coverage_rejected(self):
        a = SweepRunner(rng_scenario(), rng=SEED).run(point_slice=(0, 3))
        with pytest.raises(ConfigurationError, match="cover"):
            SweepResult.merge(a)

    def test_mismatched_specs_rejected(self):
        a = SweepRunner(rng_scenario(), rng=SEED).run()
        other = Scenario(
            name="other",
            sweep=SweepSpec.grid(a=(1, 2)),
            measure=lambda run: run.point["a"],
            cache_ambient=False,
        )
        b = SweepRunner(other, rng=SEED).run()
        with pytest.raises(ConfigurationError, match="different sweeps"):
            SweepResult.merge(a, b)

    def test_same_axes_different_scenarios_rejected(self):
        # Two unrelated experiments can share a grid shape; their shards
        # must not stitch into one mixed-up "whole" result.
        imposter = Scenario(
            name="imposter",
            sweep=SweepSpec.grid(a=(1, 2, 3), b=(10.0, 20.0)),
            measure=_draw,
            cache_ambient=False,
        )
        a = SweepRunner(rng_scenario(), rng=SEED).run(point_slice=(0, 3))
        b = SweepRunner(imposter, rng=SEED).run(point_slice=(3, 6))
        with pytest.raises(ConfigurationError, match="different scenarios"):
            SweepResult.merge(a, b)

    def test_empty_merge_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepResult.merge()


def _mean_abs(run):
    import numpy as np

    return float(np.mean(np.abs(run.received.mono)))


@exact_numerics_only
class TestPlanMerge:
    """``SweepResult.plan`` propagation across shards under ``auto``."""

    @pytest.fixture(autouse=True)
    def polarized_calibration(self, tmp_path, monkeypatch):
        """Pin a calibration whose serial/batched crossover is unambiguous,
        so the decisions asserted below never depend on the shipped
        (host-measured) constants: short rows must go batched, long rows
        must not."""
        constants = CalibrationConstants(
            point_overhead_s=1e-4,
            serial_sample_ns=100.0,
            vector_sample_short_ns=20.0,
            vector_sample_long_ns=400.0,
            short_row_samples=30_000,
            long_row_samples=200_000,
        )
        path = tmp_path / "calibration.json"
        path.write_text(json.dumps(constants.to_payload()))
        monkeypatch.setenv("REPRO_PLANNER_CALIBRATION", str(path))

    def _two_row_scenario(self) -> Scenario:
        # One grid, two payload lengths via PayloadSelector: the short
        # half lands in the planner's batched regime, the long half in
        # its serial regime — a single sweep whose partitions (and hence
        # shards) execute under different chosen backends.
        short = tone(1000.0, 0.02, AUDIO_RATE_HZ, amplitude=0.9)
        long_ = tone(1000.0, 0.5, AUDIO_RATE_HZ, amplitude=0.9)
        return Scenario(
            name="rows",
            sweep=SweepSpec.grid(row=("short", "long"), distance_ft=(2, 4, 8, 16)),
            prepare=lambda gen: {"short": short, "long": long_},
            base_chain={"program": "silence", "stereo_decode": False},
            chain_axes=("distance_ft",),
            payload=PayloadSelector("row", {"short": "short", "long": "long"}),
            measure=_mean_abs,
        )

    def test_heterogeneous_shards_merge_with_plans(self):
        cache = AmbientCache()
        whole = SweepRunner(
            self._two_row_scenario(), rng=SEED, cache=cache, backend="auto"
        ).run()
        # Points 0-3 are the short rows, 4-7 the long rows (row-major).
        shards = [
            SweepRunner(
                self._two_row_scenario(), rng=SEED, cache=cache, backend="auto"
            ).run(point_slice=bounds)
            for bounds in ((0, 4), (4, 8))
        ]
        assert shards[0].plan[0].backend == "batched"
        assert shards[0].backend == "auto[batched:4]"
        assert shards[1].plan[0].backend == "serial"
        assert shards[1].backend == "auto[serial:4]"

        merged = SweepResult.merge(shards[1], shards[0])
        assert merged.values == whole.values
        assert merged.backend == "merged[2]"
        # Decisions concatenate in grid order with global indices, and
        # fallback counts sum (the batched shard took none).
        assert [d.backend for d in merged.plan] == ["batched", "serial"]
        assert sorted(
            i for d in merged.plan for i in d.point_indices
        ) == list(range(8))
        assert merged.n_fallbacks == 0

    def test_whole_grid_auto_plans_both_backends(self):
        result = SweepRunner(
            self._two_row_scenario(), rng=SEED, cache=AmbientCache(), backend="auto"
        ).run()
        assert {d.backend for d in result.plan} == {"batched", "serial"}
        assert result.backend == "auto[batched:4+serial:4]"
        serial = SweepRunner(
            self._two_row_scenario(), rng=SEED, cache=AmbientCache(), backend="serial"
        ).run()
        assert result.values == serial.values

    def test_explicit_backend_shard_drops_merged_plan(self):
        cache = AmbientCache()
        auto_shard = SweepRunner(
            self._two_row_scenario(), rng=SEED, cache=cache, backend="auto"
        ).run(point_slice=(0, 4))
        serial_shard = SweepRunner(
            self._two_row_scenario(), rng=SEED, cache=cache, backend="serial"
        ).run(point_slice=(4, 8))
        assert serial_shard.plan is None
        merged = SweepResult.merge(auto_shard, serial_shard)
        assert merged.plan is None
        assert merged.n_fallbacks is None  # serial shard has no count

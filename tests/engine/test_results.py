"""Tests for sweep result tables and the stable series-key formatters."""

import numpy as np
import pytest

from repro.engine import SweepResult, SweepSpec, format_axis_value, power_key


class TestFormatAxisValue:
    def test_integral_floats_match_legacy_int_formatting(self):
        # The legacy loops wrote f"P{int(power)}"; integral values must
        # keep producing the same text so existing result keys survive.
        assert format_axis_value(-30.0) == "-30"
        assert format_axis_value(20.0) == "20"
        assert format_axis_value(0.0) == "0"

    def test_fractional_floats_stay_distinct(self):
        # int(-32.5) == int(-32.9) == -32 collided under the old scheme.
        assert format_axis_value(-32.5) == "-32.5"
        assert format_axis_value(-32.9) == "-32.9"
        assert format_axis_value(-32.5) != format_axis_value(-32.9)

    def test_ints_and_numpy_scalars(self):
        assert format_axis_value(4) == "4"
        assert format_axis_value(np.int64(-60)) == "-60"
        assert format_axis_value(np.float64(-40.0)) == "-40"
        assert format_axis_value(np.float64(-32.5)) == "-32.5"

    def test_strings_and_bools_pass_through(self):
        assert format_axis_value("rock") == "rock"
        assert format_axis_value(True) == "True"

    def test_non_finite_floats_format_instead_of_crashing(self):
        # int(float("inf")) raises OverflowError and int(float("nan"))
        # raises ValueError; an unbounded axis value (e.g. an infinite
        # distance sentinel) must format, not crash the results table.
        assert format_axis_value(float("inf")) == "inf"
        assert format_axis_value(float("-inf")) == "-inf"
        assert format_axis_value(float("nan")) == "nan"

    def test_non_finite_numpy_scalars(self):
        assert format_axis_value(np.float64("inf")) == "inf"
        assert format_axis_value(np.float64("-inf")) == "-inf"
        assert format_axis_value(np.float64("nan")) == "nan"


class TestPowerKey:
    def test_matches_legacy_keys_for_integral_powers(self):
        assert power_key(-30.0) == "P-30"
        assert power_key(-60) == "P-60"

    def test_fractional_powers_do_not_collide(self):
        assert power_key(-32.5) == "P-32.5"
        assert power_key(-32.5) != power_key(-32.9)

    def test_prefix(self):
        assert power_key(-40.0, prefix="snr_P") == "snr_P-40"

    def test_non_finite_powers(self):
        assert power_key(float("-inf")) == "P-inf"
        assert power_key(float("nan")) == "Pnan"


def _result():
    spec = SweepSpec.grid(power_dbm=(-20.0, -40.0), distance_ft=(1, 2, 4))
    points = spec.points()
    # value encodes its coordinates so slices are easy to check
    values = [(p["power_dbm"], p["distance_ft"]) for p in points]
    return SweepResult(spec=spec, points=points, values=values)


class TestSweepResult:
    def test_len_and_iter(self):
        result = _result()
        assert len(result) == 6
        for point, value in result:
            assert value == (point["power_dbm"], point["distance_ft"])

    def test_series_slices_along_one_axis(self):
        result = _result()
        series = result.series(along="distance_ft", power_dbm=-40.0)
        assert series == [(-40.0, 1), (-40.0, 2), (-40.0, 4)]

    def test_series_requires_other_axes_fixed(self):
        with pytest.raises(KeyError):
            _result().series(along="distance_ft")

    def test_series_unknown_axis(self):
        with pytest.raises(KeyError):
            _result().series(along="rate", power_dbm=-20.0)

    def test_series_rejects_value_not_on_axis(self):
        # A typo'd pin must raise, not silently return an empty list.
        with pytest.raises(KeyError):
            _result().series(along="distance_ft", power_dbm=-35.0)

    def test_series_rejects_pin_on_unknown_axis(self):
        with pytest.raises(KeyError):
            _result().series(along="distance_ft", power_dbm=-20.0, rate="100bps")

    def test_value_at_single_point(self):
        result = _result()
        assert result.value_at(power_dbm=-20.0, distance_ft=2) == (-20.0, 2)
        with pytest.raises(KeyError):
            result.value_at(power_dbm=-20.0)  # matches three points

    def test_grid_reshapes_to_sweep_shape(self):
        grid = _result().grid()
        assert grid.shape == (2, 3)
        assert grid[1, 2] == (-40.0, 4)

    def test_to_table_records(self):
        records = _result().to_table()
        assert records[0] == {"power_dbm": -20.0, "distance_ft": 1, "value": (-20.0, 1)}
        assert len(records) == 6

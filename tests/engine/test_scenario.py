"""Tests for the declarative sweep scenario layer."""

import pytest

from repro.engine import Axis, GridPoint, Scenario, SweepSpec
from repro.errors import ConfigurationError


class TestAxis:
    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            Axis("power_dbm", ())

    def test_values_preserved_in_order(self):
        axis = Axis("distance_ft", (1, 2, 4))
        assert axis.values == (1, 2, 4)


class TestSweepSpec:
    def test_grid_preserves_declaration_order(self):
        spec = SweepSpec.grid(power_dbm=(-20.0, -40.0), distance_ft=(1, 2, 4))
        assert spec.names == ("power_dbm", "distance_ft")
        assert spec.shape == (2, 3)
        assert spec.n_points == 6

    def test_points_enumerate_row_major(self):
        # First axis outermost — the nesting order of the legacy loops.
        spec = SweepSpec.grid(a=(1, 2), b=("x", "y"))
        coords = [(p["a"], p["b"]) for p in spec.points()]
        assert coords == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]
        assert [p.index for p in spec.points()] == [0, 1, 2, 3]

    def test_needs_at_least_one_axis(self):
        with pytest.raises(ConfigurationError):
            SweepSpec([])

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec([Axis("a", (1,)), Axis("a", (2,))])

    def test_axis_lookup(self):
        spec = SweepSpec.grid(power_dbm=(-20.0,), distance_ft=(1, 2))
        assert spec.axis("distance_ft").values == (1, 2)
        with pytest.raises(KeyError):
            spec.axis("rate")


class TestGridPoint:
    def test_mapping_access(self):
        point = GridPoint(index=3, coords={"power_dbm": -30.0, "distance_ft": 4})
        assert point["power_dbm"] == -30.0
        assert point.get("missing", "fallback") == "fallback"
        assert point.values == (-30.0, 4)


class TestScenario:
    @staticmethod
    def _scenario(**overrides):
        kwargs = dict(
            name="demo",
            sweep=SweepSpec.grid(power_dbm=(-20.0, -40.0)),
            measure=lambda run: 0.0,
        )
        kwargs.update(overrides)
        return Scenario(**kwargs)

    def test_default_rng_keys_are_name_plus_values(self):
        scenario = self._scenario()
        point = scenario.sweep.points()[1]
        assert scenario.point_rng_keys(point) == ("demo", -40.0)

    def test_rng_keys_override(self):
        scenario = self._scenario(rng_keys=lambda p: ("fig7", p["power_dbm"]))
        point = scenario.sweep.points()[0]
        assert scenario.point_rng_keys(point) == ("fig7", -20.0)

    def test_chain_kwargs_merge_per_point_over_base(self):
        scenario = self._scenario(
            base_chain={"program": "news", "power_dbm": 0.0},
            chain_params=lambda p: {"power_dbm": p["power_dbm"]},
        )
        point = scenario.sweep.points()[1]
        assert scenario.chain_kwargs(point) == {"program": "news", "power_dbm": -40.0}
        assert scenario.uses_chain

    def test_no_chain_declared(self):
        scenario = self._scenario()
        assert not scenario.uses_chain
        assert scenario.chain_kwargs(scenario.sweep.points()[0]) == {}

"""Determinism tests for the sweep runner.

The engine's contract: one seed fixes every per-point stream before
execution starts, so the same scenario produces bit-identical series
whether it runs serially, across a thread pool, or through the legacy
hand-rolled nested loop it replaced.
"""

import numpy as np
import pytest

from repro.audio.tones import tone
from repro.constants import AUDIO_RATE_HZ
from repro.dsp.spectrum import tone_snr_db
from repro.engine import AmbientCache, Scenario, SweepRunner, SweepSpec, default_max_workers
from repro.errors import ConfigurationError
from repro.experiments import fig08_ber_overlay as fig08
from repro.experiments.common import ExperimentChain
from repro.utils.rand import as_generator, child_generator, derive_seed

POWERS = (-20.0, -40.0)
DISTANCES = (2, 8)
SEED = 2017


@pytest.fixture(scope="module")
def payload():
    return tone(1000.0, 0.2, AUDIO_RATE_HZ, amplitude=0.9)


def _snr_scenario(payload, cache_ambient):
    """The Fig. 7 sweep shape: tone SNR over a power × distance grid."""

    def measure(run):
        received = run.chain.transmit(payload, run.rng)
        return tone_snr_db(run.chain.payload_channel(received), AUDIO_RATE_HZ, 1000.0)

    return Scenario(
        name="fig7",
        sweep=SweepSpec.grid(power_dbm=POWERS, distance_ft=DISTANCES),
        base_chain={"program": "silence", "stereo_decode": False},
        chain_params=lambda p: {
            "power_dbm": p["power_dbm"],
            "distance_ft": p["distance_ft"],
        },
        rng_keys=lambda p: ("fig7", p["power_dbm"], p["distance_ft"]),
        measure=measure,
        cache_ambient=cache_ambient,
    )


def _legacy_loop(payload):
    """The hand-rolled nested loop the engine replaced, draw for draw."""
    gen = as_generator(SEED)
    series = []
    for power in POWERS:
        for distance in DISTANCES:
            chain = ExperimentChain(
                program="silence",
                power_dbm=power,
                distance_ft=distance,
                stereo_decode=False,
            )
            received = chain.transmit(
                payload, child_generator(gen, "fig7", power, distance)
            )
            series.append(
                tone_snr_db(chain.payload_channel(received), AUDIO_RATE_HZ, 1000.0)
            )
    return series


class TestDeriveSeed:
    def test_pure_function_of_arguments(self):
        assert derive_seed(7, "fig7", -40.0, 8) == derive_seed(7, "fig7", -40.0, 8)

    def test_sensitive_to_master_and_keys(self):
        base = derive_seed(7, "fig7", -40.0, 8)
        assert derive_seed(8, "fig7", -40.0, 8) != base
        assert derive_seed(7, "fig7", -20.0, 8) != base

    def test_matches_child_generator_streams(self):
        # child_generator is now a thin wrapper over derive_seed; the two
        # derivations must stay interchangeable for legacy parity.
        gen = as_generator(SEED)
        master = int(as_generator(SEED).integers(0, 2**31))
        a = child_generator(gen, "k", 3).integers(0, 1000, size=8)
        b = np.random.default_rng(derive_seed(master, "k", 3)).integers(0, 1000, size=8)
        assert np.array_equal(a, b)


class TestSerialParallelLegacyParity:
    def test_engine_reproduces_legacy_loop_exactly(self, payload):
        # Same seed, caching off (the legacy loops synthesized ambient
        # per point): the engine must consume the identical RNG draws and
        # return the identical SNR series.
        result = SweepRunner(_snr_scenario(payload, cache_ambient=False), rng=SEED).run()
        assert result.values == _legacy_loop(payload)
        assert result.cache_stats is None

    def test_serial_and_parallel_identical_uncached(self, payload):
        # Backends pinned explicitly: this test is about serial-vs-thread
        # parity and must not change meaning when REPRO_SWEEP_BACKEND
        # forces a different backend (CI runs a batched-backend leg).
        scenario = _snr_scenario(payload, cache_ambient=False)
        serial = SweepRunner(scenario, rng=SEED, max_workers=1, backend="serial").run()
        parallel = SweepRunner(scenario, rng=SEED, max_workers=4, backend="thread").run()
        assert serial.values == parallel.values
        assert serial.n_workers == 1 and parallel.n_workers == 4

    def test_serial_and_parallel_identical_cached(self, payload):
        # Separate fresh caches: equality proves the synthesis itself is
        # deterministic, not merely that both runs read one shared array.
        scenario = _snr_scenario(payload, cache_ambient=True)
        serial = SweepRunner(scenario, rng=SEED, cache=AmbientCache(), max_workers=1).run()
        parallel = SweepRunner(scenario, rng=SEED, cache=AmbientCache(), max_workers=4).run()
        assert serial.values == parallel.values
        assert serial.cache_stats == parallel.cache_stats
        assert serial.cache_stats["misses"] >= 1

    def test_fig08_run_identical_across_worker_counts(self, monkeypatch):
        # The public figure entry point, driven purely through the
        # environment override — no call-site changes needed.
        kwargs = dict(
            rate="100bps",
            powers_dbm=(-20.0, -60.0),
            distances_ft=(2, 8),
            n_bits=20,
            rng=SEED,
        )
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        serial = fig08.run(**kwargs)
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "4")
        parallel = fig08.run(**kwargs)
        assert serial == parallel
        assert set(serial) == {"distances_ft", "P-20", "P-60"}

    def test_different_seeds_differ(self, payload):
        scenario = _snr_scenario(payload, cache_ambient=False)
        a = SweepRunner(scenario, rng=1).run()
        b = SweepRunner(scenario, rng=2).run()
        assert a.values != b.values


class TestWorkerConfiguration:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        assert default_max_workers() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "6")
        assert default_max_workers() == 6

    def test_env_rejects_non_positive_counts(self, monkeypatch):
        # Strict knob parsing: a nonsensical worker count is a
        # configuration error naming the value, not a silent clamp to 1.
        for raw in ("0", "-3"):
            monkeypatch.setenv("REPRO_SWEEP_WORKERS", raw)
            with pytest.raises(ConfigurationError, match=raw):
                default_max_workers()

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "many")
        with pytest.raises(ConfigurationError):
            default_max_workers()

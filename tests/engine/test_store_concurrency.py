"""Concurrent-writer hammer for :class:`CacheStore` save/load.

The store's contract under contention: many processes racing one key may
at worst *duplicate* the synthesis (each writes the same bytes through
its own temp file + atomic rename) — a reader never sees a torn or
corrupt file, only a miss or the complete array.
"""

import multiprocessing

import numpy as np

from repro.engine import AmbientCache, CacheStore

KEY = ("hammer", 2017, ("rock", True), 4800)
N_PROCS = 4
N_ROUNDS = 25
ARRAY_LEN = 4096


def _expected() -> np.ndarray:
    # Deterministic, content-checkable payload: every racer writes the
    # same bytes, so any complete read must equal this exactly.
    return np.arange(ARRAY_LEN, dtype=np.float64) * 0.5


def _hammer(directory: str, result_q) -> None:
    """Race save/load on one key; report reads that returned wrong bytes."""
    store = CacheStore(directory)
    expected = _expected()
    corrupt = 0
    misses = 0
    for _ in range(N_ROUNDS):
        store.save(KEY, expected)
        loaded = store.load(KEY)
        if loaded is None:
            misses += 1  # tolerated: a racer's replace can look transient
        elif not np.array_equal(loaded, expected):
            corrupt += 1
    result_q.put(("hammer", corrupt, misses))


def _cached_get(directory: str, result_q) -> None:
    """Race AmbientCache.get; report whether this process synthesized."""
    cache = AmbientCache(store=CacheStore(directory))
    value = cache.get(KEY, _expected)
    ok = np.array_equal(value, _expected())
    result_q.put(("get", cache.stats.get("syntheses", 0), ok))


def _run_processes(target, directory, n_procs=N_PROCS):
    ctx = multiprocessing.get_context("fork")
    result_q = ctx.Queue()
    procs = [
        ctx.Process(target=target, args=(directory, result_q), daemon=True)
        for _ in range(n_procs)
    ]
    for proc in procs:
        proc.start()
    results = [result_q.get(timeout=60) for _ in procs]
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    return results


class TestConcurrentWriters:
    def test_racing_saves_never_corrupt_reads(self, tmp_path):
        results = _run_processes(_hammer, str(tmp_path))
        assert len(results) == N_PROCS
        total_corrupt = sum(corrupt for _, corrupt, _ in results)
        assert total_corrupt == 0
        # After the dust settles the entry is whole and correct.
        final = CacheStore(tmp_path).load(KEY)
        assert np.array_equal(final, _expected())
        # No temp-file litter: every racer either renamed or cleaned up.
        assert list(tmp_path.glob("*.tmp.npz")) == []

    def test_racing_cache_gets_at_worst_duplicate_the_synthesis(self, tmp_path):
        results = _run_processes(_cached_get, str(tmp_path))
        assert all(ok for _, _, ok in results)
        total_syntheses = sum(n for _, n, _ in results)
        # At least one racer had to synthesize; duplicates are allowed
        # (each per-process count is 0 or 1), lost updates are not.
        assert 1 <= total_syntheses <= N_PROCS
        assert all(n in (0, 1) for _, n, _ in results)

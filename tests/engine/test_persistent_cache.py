"""Tests for the persistent (disk-spilled) ambient cache."""

import os
import time

import numpy as np
import pytest

from repro.engine import AmbientCache, CachedAmbient, CacheStore, default_cache
from repro.engine.store import stable_key_digest
from repro.experiments import fig08_ber_overlay as fig08

SEED = 2017
FIG08_KWARGS = dict(
    rate="100bps",
    powers_dbm=(-20.0, -60.0),
    distances_ft=(2, 8),
    n_bits=24,
    rng=SEED,
)


class TestCacheStore:
    def test_round_trip(self, tmp_path):
        store = CacheStore(tmp_path)
        key = ("comp_iq", 7, None, ("news", True, "overlay", 1.0, None), 4800)
        value = np.arange(32, dtype=complex) * (1 + 1j)
        store.save(key, value)
        loaded = store.load(key)
        assert np.array_equal(loaded, value)
        assert loaded.dtype == value.dtype
        assert len(store) == 1

    def test_absent_key_is_none(self, tmp_path):
        assert CacheStore(tmp_path).load(("nope",)) is None

    def test_digest_is_stable(self):
        key = ("mpx", 1, None, "news", True, 4800)
        assert stable_key_digest(key) == stable_key_digest(key)
        assert stable_key_digest(key) != stable_key_digest(key + ("x",))

    def test_corrupt_file_reads_as_miss(self, tmp_path):
        store = CacheStore(tmp_path)
        key = ("k",)
        store.save(key, np.zeros(4))
        store.path_for(key).write_bytes(b"not a zipfile")
        assert store.load(key) is None

    def test_corrupt_file_is_reaped_and_counted(self, tmp_path):
        # A torn entry must never raise out of a sweep: it reads as a
        # miss, the file is removed (so the re-synthesis can re-spill a
        # good copy), and the eviction is counted for telemetry.
        store = CacheStore(tmp_path)
        key = ("k",)
        store.save(key, np.zeros(4))
        path = store.path_for(key)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert store.load(key) is None
        assert store.corrupt_evictions == 1
        assert not path.exists()
        # The next save-load cycle is healthy again.
        store.save(key, np.ones(4))
        assert np.array_equal(store.load(key), np.ones(4))
        assert store.corrupt_evictions == 1

    def test_missing_file_is_a_miss_not_a_corruption(self, tmp_path):
        # A concurrent clear/eviction between exists() and open() is a
        # plain race, not damage — it must not move the corruption gauge.
        store = CacheStore(tmp_path)
        assert store.load(("absent",)) is None
        assert store.corrupt_evictions == 0

    def test_key_mismatch_reads_as_miss(self, tmp_path):
        # A digest collision would otherwise serve the wrong waveform.
        store = CacheStore(tmp_path)
        a, b = ("a",), ("b",)
        store.save(a, np.ones(4))
        os.replace(store.path_for(a), store.path_for(b))
        assert store.load(b) is None
        # Someone else's *valid* entry is not corrupt: no reap, no count.
        assert store.corrupt_evictions == 0
        assert store.path_for(b).exists()

    def test_corrupt_cache_fault_tears_the_targeted_save(self, tmp_path, monkeypatch):
        from repro.engine.faults import FAULTS_ENV_VAR

        monkeypatch.setenv(FAULTS_ENV_VAR, "corrupt-cache:0")
        store = CacheStore(tmp_path)
        store.save(("first",), np.zeros(8))   # save ordinal 0: torn
        store.save(("second",), np.ones(8))   # later ordinals intact
        assert store.load(("first",)) is None
        assert store.corrupt_evictions == 1
        assert np.array_equal(store.load(("second",)), np.ones(8))

    def test_ambient_cache_stats_surface_corrupt_evictions(self, tmp_path):
        store = CacheStore(tmp_path)
        cache = AmbientCache(store=store)
        assert cache.stats["corrupt_evictions"] == 0
        key = ("k",)
        store.save(key, np.zeros(4))
        store.path_for(key).write_bytes(b"junk")
        store.load(key)
        assert cache.stats["corrupt_evictions"] == 1

    def test_clear_removes_entries(self, tmp_path):
        store = CacheStore(tmp_path)
        store.save(("k",), np.zeros(2))
        store.clear()
        assert len(store) == 0


class TestStaleTempJanitor:
    """Crashed writers leave ``*.tmp.npz`` orphans; opening a store reaps
    old ones while leaving a concurrent writer's live temp alone."""

    @staticmethod
    def _plant_temp(tmp_path, name, age_s):
        path = tmp_path / name
        path.write_bytes(b"partial write")
        old = time.time() - age_s
        os.utime(path, (old, old))
        return path

    def test_open_reaps_old_orphans(self, tmp_path):
        orphan = self._plant_temp(tmp_path, "abc123.tmp.npz", age_s=7200)
        CacheStore(tmp_path)
        assert not orphan.exists()

    def test_open_spares_young_temps(self, tmp_path):
        live = self._plant_temp(tmp_path, "def456.tmp.npz", age_s=1)
        CacheStore(tmp_path)
        assert live.exists()

    def test_sweep_returns_the_reap_count(self, tmp_path):
        store = CacheStore(tmp_path)
        self._plant_temp(tmp_path, "a.tmp.npz", age_s=7200)
        self._plant_temp(tmp_path, "b.tmp.npz", age_s=7200)
        self._plant_temp(tmp_path, "c.tmp.npz", age_s=1)
        assert store.sweep_stale_temps() == 2
        assert store.sweep_stale_temps(max_age_s=0) == 1

    def test_temps_are_not_entries(self, tmp_path):
        store = CacheStore(tmp_path)
        store.save(("k",), np.zeros(2))
        self._plant_temp(tmp_path, "live.tmp.npz", age_s=1)
        assert len(store) == 1

    def test_clear_spares_live_temps(self, tmp_path):
        # Unlinking a concurrent writer's temp would break its atomic
        # os.replace; clear() must only delete finished entries.
        store = CacheStore(tmp_path)
        store.save(("k",), np.zeros(2))
        live = self._plant_temp(tmp_path, "live.tmp.npz", age_s=1)
        store.clear()
        assert len(store) == 0
        assert live.exists()

    def test_custom_age_threshold(self, tmp_path):
        orphan = self._plant_temp(tmp_path, "x.tmp.npz", age_s=120)
        CacheStore(tmp_path, stale_temp_age_s=60.0)
        assert not orphan.exists()


class TestAmbientCacheSpill:
    def test_second_cache_instance_loads_from_disk(self, tmp_path):
        # Two caches on one directory model two processes (or two runs of
        # one benchmark): the second must synthesize nothing.
        store = CacheStore(tmp_path)
        first = CachedAmbient(AmbientCache(store=store), master_seed=SEED)
        a = first.mpx("news", stereo=True, duration_s=0.1)
        assert first.cache.stats["syntheses"] == 1

        second = CachedAmbient(AmbientCache(store=CacheStore(tmp_path)), master_seed=SEED)
        b = second.mpx("news", stereo=True, duration_s=0.1)
        assert np.array_equal(a, b)
        assert second.cache.stats == {
            "hits": 0, "misses": 1, "items": 1, "disk_hits": 1, "syntheses": 0,
            "corrupt_evictions": 0,
        }

    def test_stats_without_store_keep_legacy_shape(self):
        cache = AmbientCache()
        cache.get(("k",), lambda: np.zeros(2))
        assert cache.stats == {"hits": 0, "misses": 1, "items": 1}

    def test_spilled_arrays_are_read_only(self, tmp_path):
        cache = AmbientCache(store=CacheStore(tmp_path))
        cache.get(("k",), lambda: np.zeros(4))
        warm = AmbientCache(store=CacheStore(tmp_path))
        value = warm.get(("k",), lambda: np.ones(4))
        assert np.array_equal(value, np.zeros(4))  # disk, not the factory
        with pytest.raises(ValueError):
            value[0] = 1.0


class TestDefaultCacheEnv:
    def test_default_cache_attaches_store_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = default_cache()
        assert cache.store is not None
        assert cache.store.directory == tmp_path
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_cache().store is None

    def test_warm_sweep_performs_zero_syntheses(self, tmp_path, monkeypatch):
        # The acceptance bar: with a persistent cache, a repeated figure
        # sweep (here in a simulated fresh process: a fresh default
        # cache) synthesizes nothing and reproduces the cold run exactly.
        import repro.engine.cache as cache_mod

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(cache_mod, "_DEFAULT_CACHE", None)
        cold_cache = default_cache()
        cold = fig08.run(**FIG08_KWARGS)
        assert cold_cache.stats["syntheses"] > 0

        monkeypatch.setattr(cache_mod, "_DEFAULT_CACHE", None)
        warm_cache = default_cache()
        warm = fig08.run(**FIG08_KWARGS)
        assert warm == cold
        assert warm_cache.stats["syntheses"] == 0
        assert warm_cache.stats["disk_hits"] > 0

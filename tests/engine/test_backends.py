"""Golden-seed equivalence of the sweep backends.

The engine's contract: the per-point streams are pre-derived from the
sweep generator, so ``serial``, ``thread``, ``process`` and ``batched``
execution — and ``auto``, which may split one grid across several of
them — return bit-identical results: on a data-BER scenario (Fig. 8),
an audio-metric scenario (Fig. 7) and the stereo-decoding scenarios
(Fig. 10/13, whose pilot PLL the batched backend vectorizes through the
multi-waveform ``track_batch``) alike.
"""

import numpy as np
import pytest

from repro.audio.tones import tone
from repro.constants import AUDIO_RATE_HZ
from repro.data.fdm import FdmFskModem
from repro.engine import (
    AmbientCache,
    AxisRef,
    Scenario,
    SweepRunner,
    SweepSpec,
    default_backend,
)
from repro.errors import ConfigurationError
from repro.experiments import fig07_snr_distance as fig07
from repro.experiments import fig08_ber_overlay as fig08
from repro.experiments import fig10_stereo_ber as fig10
from repro.experiments import fig13_pesq_stereo as fig13
from repro.utils.env import fast_numerics

exact_numerics_only = pytest.mark.skipif(
    fast_numerics(),
    reason="bit-identity is an exact-numerics contract; REPRO_NUMERICS=fast "
    "is gated by the tolerance golden tier",
)


SEED = 2017
BACKENDS = ("serial", "thread", "process", "batched", "auto")

FIG08_KWARGS = dict(
    rate="1.6kbps",
    powers_dbm=(-55.0, -60.0),
    distances_ft=(8, 16),
    n_bits=48,
    rng=SEED,
)
FIG07_KWARGS = dict(
    powers_dbm=(-30.0, -60.0),
    distances_ft=(2, 8),
    duration_s=0.15,
    rng=SEED,
)
FIG10_KWARGS = dict(distances_ft=(2, 4), n_bits=48, rng=SEED)
FIG13_KWARGS = dict(
    powers_dbm=(-20.0, -40.0),
    distances_ft=(1, 4),
    duration_s=0.2,
    rng=SEED,
)


@exact_numerics_only
class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def fig08_by_backend(self):
        return {
            backend: self._run_with_backend(fig08.run, FIG08_KWARGS, backend)
            for backend in BACKENDS
        }

    @pytest.fixture(scope="class")
    def fig07_by_backend(self):
        return {
            backend: self._run_with_backend(fig07.run, FIG07_KWARGS, backend)
            for backend in BACKENDS
        }

    @staticmethod
    def _run_with_backend(run, kwargs, backend):
        import os

        before = os.environ.get("REPRO_SWEEP_BACKEND")
        os.environ["REPRO_SWEEP_BACKEND"] = backend
        try:
            return run(**kwargs)
        finally:
            if before is None:
                os.environ.pop("REPRO_SWEEP_BACKEND", None)
            else:
                os.environ["REPRO_SWEEP_BACKEND"] = before

    def test_data_ber_scenario_identical_across_backends(self, fig08_by_backend):
        serial = fig08_by_backend["serial"]
        # The grid sits on the BER cliff, so the values are non-trivial —
        # a shifted noise stream would visibly change them.
        assert any(v > 0 for key in ("P-55", "P-60") for v in serial[key])
        for backend in BACKENDS[1:]:
            assert fig08_by_backend[backend] == serial, backend

    def test_audio_metric_scenario_identical_across_backends(self, fig07_by_backend):
        serial = fig07_by_backend["serial"]
        for backend in BACKENDS[1:]:
            assert fig07_by_backend[backend] == serial, backend

    def test_stereo_ber_scenario_identical_across_backends(self):
        # Fig. 10 mixes overlay (mono decode) and stereo (pilot PLL)
        # points in one grid; all four backends must agree bit for bit.
        by_backend = {
            backend: self._run_with_backend(fig10.run, FIG10_KWARGS, backend)
            for backend in BACKENDS
        }
        serial = by_backend["serial"]
        for backend in BACKENDS[1:]:
            assert by_backend[backend] == serial, backend

    def test_stereo_pesq_scenario_identical_across_backends(self):
        # Fig. 13 stereo-decodes at every point, with the pilot gate
        # flipping between lock and mono fallback across the power axis.
        by_backend = {
            backend: self._run_with_backend(fig13.run, FIG13_KWARGS, backend)
            for backend in BACKENDS
        }
        serial = by_backend["serial"]
        for backend in BACKENDS[1:]:
            assert by_backend[backend] == serial, backend

    def test_batched_handles_mixed_receivers_in_one_front_end_group(self):
        # A receiver-kind axis shares one front end across phone and car
        # points; the batched backend must partition the group — the mono
        # phone half through receive_mono_batch, the car half (whose
        # radio always runs its stereo decoder) through the
        # multi-waveform-PLL stereo batch — and stay bit-identical to
        # serial with zero per-point fallbacks.
        payload = tone(1000.0, 0.1, AUDIO_RATE_HZ, amplitude=0.9)
        scenario = Scenario(
            name="mixed",
            sweep=SweepSpec.grid(receiver=("smartphone", "car"), distance_ft=(2, 8)),
            prepare=lambda gen: {"payload": payload},
            base_chain={"program": "silence", "stereo_decode": False},
            chain_axes=("distance_ft",),
            chain_value_params={
                "receiver": {
                    "smartphone": {"receiver_kind": "smartphone"},
                    "car": {"receiver_kind": "car"},
                }
            },
            payload="payload",
            measure=_mean_abs,
        )
        serial = SweepRunner(
            scenario, rng=SEED, cache=AmbientCache(), backend="serial"
        ).run()
        batched = SweepRunner(
            scenario, rng=SEED, cache=AmbientCache(), backend="batched"
        ).run()
        assert batched.values == serial.values
        assert batched.backend == "batched[4/4]"
        assert batched.n_fallbacks == 0
        assert serial.n_fallbacks is None

    def test_fig10_batched_takes_zero_stereo_fallbacks(self):
        # The acceptance bar for the multi-waveform pilot PLL: the exact
        # Fig. 10 grid vectorizes completely — no per-point fallback on
        # the stereo-decoding half — and matches serial bit for bit.
        scenario = fig10.build_scenario(
            "1.6k", FdmFskModem(symbol_rate=200), distances_ft=(2, 4), n_bits=48
        )
        serial = SweepRunner(
            scenario, rng=SEED, cache=AmbientCache(), backend="serial"
        ).run()
        batched = SweepRunner(
            scenario, rng=SEED, cache=AmbientCache(), backend="batched"
        ).run()
        assert batched.backend == "batched[4/4]"
        assert batched.n_fallbacks == 0
        assert batched.values == serial.values

    def test_fig13_batched_takes_zero_stereo_fallbacks(self):
        scenario = fig13.build_scenario(
            "stereo_station",
            powers_dbm=(-20.0, -40.0),
            distances_ft=(1, 4),
            duration_s=0.2,
        )
        serial = SweepRunner(
            scenario, rng=SEED, cache=AmbientCache(), backend="serial"
        ).run()
        batched = SweepRunner(
            scenario, rng=SEED, cache=AmbientCache(), backend="batched"
        ).run()
        assert batched.backend == "batched[4/4]"
        assert batched.n_fallbacks == 0
        assert batched.values == serial.values
        # The grid must actually exercise the stereo decoder.
        assert any(locked for _, locked in batched.values)

    def test_batched_backend_reports_vectorized_points(self):
        payload = tone(1000.0, 0.1, AUDIO_RATE_HZ, amplitude=0.9)
        scenario = Scenario(
            name="label",
            sweep=SweepSpec.grid(power_dbm=(-20.0, -40.0), distance_ft=(2, 8)),
            prepare=lambda gen: {"payload": payload},
            base_chain={"program": "silence", "stereo_decode": False},
            chain_axes=("power_dbm", "distance_ft"),
            payload="payload",
            measure=_mean_abs,
        )
        result = SweepRunner(
            scenario, rng=SEED, cache=AmbientCache(), backend="batched"
        ).run()
        assert result.backend == "batched[4/4]"
        assert result.n_workers == 1


def _mean_abs(run):
    return float(np.mean(np.abs(run.received.mono)))


def _closure_measure_factory():
    secret = object()
    return lambda run: secret


class TestBackendConfiguration:
    def test_env_backend_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "gpu")
        with pytest.raises(ConfigurationError):
            default_backend()

    def test_env_backend_unset_means_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_BACKEND", raising=False)
        assert default_backend() is None

    def test_constructor_rejects_unknown_backend(self):
        scenario = Scenario(
            name="x", sweep=SweepSpec.grid(a=(1,)), measure=_mean_abs
        )
        with pytest.raises(ConfigurationError):
            SweepRunner(scenario, backend="fiber")

    def test_process_backend_rejects_unpicklable_scenario(self):
        scenario = Scenario(
            name="closures",
            sweep=SweepSpec.grid(a=(1, 2)),
            measure=_closure_measure_factory(),
            cache_ambient=False,
        )
        with pytest.raises(ConfigurationError, match="declarative"):
            SweepRunner(scenario, backend="process", max_workers=2).run()

    def test_single_point_grid_reports_serial_execution(self):
        scenario = Scenario(
            name="one",
            sweep=SweepSpec.grid(a=(1,)),
            measure=lambda run: run.point["a"],
            cache_ambient=False,
        )
        result = SweepRunner(scenario, rng=SEED, backend="batched").run()
        assert result.backend == "serial"
        assert result.values == [1]

    def test_serial_label_recorded(self):
        scenario = Scenario(
            name="label",
            sweep=SweepSpec.grid(a=(1, 2)),
            measure=lambda run: run.point["a"],
            cache_ambient=False,
        )
        result = SweepRunner(scenario, rng=SEED, backend="serial").run()
        assert result.backend == "serial"
        assert result.values == [1, 2]

"""Tests for the staged link pipeline (front end / link / receive)."""

import pickle

import numpy as np
import pytest

from repro.audio.tones import tone
from repro.channel.link import batched_rf_snr_db, transmit_batch
from repro.constants import AUDIO_RATE_HZ
from repro.errors import ConfigurationError
from repro.experiments.common import (
    ChainState,
    ExperimentChain,
    FrontEndStage,
    LinkStage,
    ReceiveStage,
)
from repro.receiver.fm_receiver import receive_mono_batch, supports_mono_batch
from repro.utils.rand import as_generator, child_generator
from repro.utils.env import fast_numerics

exact_numerics_only = pytest.mark.skipif(
    fast_numerics(),
    reason="bit-identity is an exact-numerics contract; REPRO_NUMERICS=fast "
    "is gated by the tolerance golden tier",
)


SEED = 2017


@pytest.fixture(scope="module")
def payload():
    return tone(1000.0, 0.15, AUDIO_RATE_HZ, amplitude=0.9)


def _chain(**overrides):
    kwargs = dict(program="silence", power_dbm=-30.0, distance_ft=4, stereo_decode=False)
    kwargs.update(overrides)
    return ExperimentChain(**kwargs)


class TestChainValidation:
    def test_rejects_nonpositive_distance(self):
        with pytest.raises(ConfigurationError):
            _chain(distance_ft=0)
        with pytest.raises(ConfigurationError):
            _chain(distance_ft=-3.0)

    def test_rejects_non_finite_power(self):
        with pytest.raises(ConfigurationError):
            _chain(power_dbm=float("nan"))
        with pytest.raises(ConfigurationError):
            _chain(power_dbm=float("inf"))

    def test_rejects_non_numeric_values_with_configuration_error(self):
        with pytest.raises(ConfigurationError):
            _chain(power_dbm="-20")
        with pytest.raises(ConfigurationError):
            _chain(distance_ft=None)

    def test_valid_configuration_accepted(self):
        assert _chain(power_dbm=-60.0, distance_ft=0.5).distance_ft == 0.5


class TestStageDerivation:
    def test_stages_are_picklable(self, payload):
        chain = _chain(receiver_kind="car")
        for stage in (chain.front_end(), chain.link_stage(), chain.receive_stage()):
            clone = pickle.loads(pickle.dumps(stage))
            assert clone == stage

    def test_front_end_key_matches_chain(self):
        chain = _chain(back_amplitude=0.5, dco_bits=4)
        assert chain.front_end().front_end_key() == chain.front_end_key()

    def test_front_end_key_ignores_link_and_receiver(self):
        near = _chain(power_dbm=-20.0, distance_ft=1)
        far = _chain(power_dbm=-60.0, distance_ft=20, receiver_kind="car")
        assert near.front_end() == far.front_end()

    def test_stagewise_apply_equals_transmit(self, payload):
        chain = _chain()
        received = chain.transmit(payload, SEED)

        gen = as_generator(SEED)
        state = ChainState(payload_audio=payload)
        state = chain.front_end().apply(state, child_generator(gen, "station"))
        state = chain.link_stage().apply(state, child_generator(gen, "link"))
        state = chain.receive_stage().apply(state, gen)
        assert np.array_equal(state.received.mono, received.mono)
        assert np.array_equal(state.received.mpx, received.mpx)

    def test_receive_stage_builds_configured_receiver(self):
        stage = ReceiveStage(receiver_kind="smartphone", stereo_decode=False, agc=True)
        receiver = stage.build_receiver(as_generator(SEED))
        assert receiver.agc_enabled and not receiver.stereo_capable

    def test_state_is_immutable(self, payload):
        state = ChainState(payload_audio=payload)
        with pytest.raises(AttributeError):
            state.iq = payload


class TestBatchedLink:
    def test_batched_snr_bit_identical_to_scalar(self):
        budgets = [
            _chain(power_dbm=p, distance_ft=d, receiver_kind=kind).link_budget()
            for p in (-20.0, -45.5, -60.0)
            for d in (1, 7.5, 20)
            for kind in ("smartphone", "car")
        ]
        batched = batched_rf_snr_db(budgets)
        scalar = np.array([b.rf_snr_db() for b in budgets])
        assert np.array_equal(batched, scalar)

    @exact_numerics_only
    def test_transmit_batch_bit_identical_to_serial_link(self, payload):
        from repro.channel.link import BackscatterLink
        from repro.constants import MPX_RATE_HZ

        chain = _chain()
        iq = chain.front_end().apply(
            ChainState(payload_audio=payload), child_generator(as_generator(1), "station")
        ).iq
        budgets = [
            _chain(power_dbm=p, distance_ft=d).link_budget()
            for p, d in ((-20.0, 2), (-50.0, 8))
        ]
        seeds = [11, 12]
        stacked = transmit_batch(iq, budgets, [np.random.default_rng(s) for s in seeds])
        for row, (budget, seed) in enumerate(zip(budgets, seeds)):
            serial = BackscatterLink(budget).transmit(
                iq, MPX_RATE_HZ, rng=np.random.default_rng(seed)
            )
            assert np.array_equal(stacked[row], serial)


class TestBatchedReceive:
    @exact_numerics_only
    def test_mono_batch_bit_identical_to_serial_receive(self, payload):
        chain = _chain()
        iq = chain.front_end().apply(
            ChainState(payload_audio=payload), child_generator(as_generator(1), "station")
        ).iq
        budgets = [
            _chain(power_dbm=p, distance_ft=d).link_budget()
            for p, d in ((-20.0, 2), (-40.0, 8), (-60.0, 16))
        ]
        rx_iq = transmit_batch(iq, budgets, [np.random.default_rng(s) for s in (1, 2, 3)])

        stage = ReceiveStage(receiver_kind="smartphone", stereo_decode=False)
        batch_receivers = [stage.build_receiver(np.random.default_rng(s)) for s in (5, 6, 7)]
        batched = receive_mono_batch(batch_receivers, rx_iq)

        serial_receivers = [stage.build_receiver(np.random.default_rng(s)) for s in (5, 6, 7)]
        for row, receiver in enumerate(serial_receivers):
            serial = receiver.receive(rx_iq[row])
            assert np.array_equal(batched[row].left, serial.left)
            assert np.array_equal(batched[row].right, serial.right)
            assert np.array_equal(batched[row].mpx, serial.mpx)
            assert batched[row].stereo_locked == serial.stereo_locked

    def test_stereo_receivers_rejected(self):
        stage = ReceiveStage(receiver_kind="smartphone", stereo_decode=True)
        receiver = stage.build_receiver(as_generator(SEED))
        assert not supports_mono_batch(receiver)
        with pytest.raises(ConfigurationError):
            receive_mono_batch([receiver], np.zeros((1, 16), dtype=complex))

    def test_shape_mismatch_rejected(self):
        stage = ReceiveStage(stereo_decode=False)
        receiver = stage.build_receiver(as_generator(SEED))
        with pytest.raises(ConfigurationError):
            receive_mono_batch([receiver], np.zeros((2, 16), dtype=complex))

"""Tests for the ambient synthesis cache."""

import numpy as np
import pytest

from repro.engine import AmbientCache, CachedAmbient, default_cache, payload_fingerprint
from repro.experiments.common import ExperimentChain


class TestAmbientCache:
    def test_miss_then_hit_returns_same_array(self):
        cache = AmbientCache()
        calls = []

        def factory():
            calls.append(1)
            return np.arange(8, dtype=float)

        first = cache.get(("k",), factory)
        second = cache.get(("k",), factory)
        assert len(calls) == 1
        assert first is second
        assert cache.stats == {"hits": 1, "misses": 1, "items": 1}

    def test_cached_arrays_are_read_only(self):
        cache = AmbientCache()
        value = cache.get(("k",), lambda: np.zeros(4))
        with pytest.raises(ValueError):
            value[0] = 1.0

    def test_lru_eviction(self):
        cache = AmbientCache(max_items=2)
        cache.get(("a",), lambda: np.zeros(1))
        cache.get(("b",), lambda: np.zeros(1))
        cache.get(("a",), lambda: np.zeros(1))  # refresh "a"
        cache.get(("c",), lambda: np.zeros(1))  # evicts "b", the LRU entry
        assert len(cache) == 2
        cache.get(("a",), lambda: np.ones(1))
        assert cache.stats["hits"] == 2  # "a" survived both evictions

    def test_clear_resets_store_and_counters(self):
        cache = AmbientCache()
        cache.get(("k",), lambda: np.zeros(1))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats == {"hits": 0, "misses": 0, "items": 0}

    def test_default_cache_is_a_singleton(self):
        assert default_cache() is default_cache()

    def test_concurrent_same_key_fills_once(self):
        import threading

        cache = AmbientCache()
        calls = []
        gate = threading.Event()

        def factory():
            calls.append(1)
            gate.wait(timeout=5)
            return np.arange(4, dtype=float)

        results = []
        threads = [
            threading.Thread(target=lambda: results.append(cache.get(("k",), factory)))
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join(timeout=10)
        assert len(calls) == 1  # one synthesis, three waiters
        assert all(np.array_equal(r, results[0]) for r in results)
        assert cache.stats == {"hits": 3, "misses": 1, "items": 1}

    def test_concurrent_distinct_keys_fill_in_parallel(self):
        import threading

        cache = AmbientCache()
        barrier = threading.Barrier(2, timeout=10)

        def make_factory(n):
            def factory():
                # Both fills must be inside their factories at once —
                # deadlocks (times out) if fills serialize under a lock.
                barrier.wait()
                return np.full(2, float(n))

            return factory

        threads = [
            threading.Thread(target=cache.get, args=((n,), make_factory(n)))
            for n in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert cache.stats == {"hits": 0, "misses": 2, "items": 2}


class TestPayloadFingerprint:
    def test_equal_payloads_equal_fingerprints(self):
        a = np.linspace(0, 1, 100)
        assert payload_fingerprint(a) == payload_fingerprint(a.copy())

    def test_different_payloads_differ(self):
        a = np.linspace(0, 1, 100)
        b = a.copy()
        b[50] += 1e-9
        assert payload_fingerprint(a) != payload_fingerprint(b)


class TestCachedAmbient:
    def test_cache_hit_returns_bit_identical_mpx(self):
        # The headline engine guarantee: a P×D grid synthesizes each
        # ambient program once, and every subsequent point reads back the
        # exact same samples.
        ambient = CachedAmbient(AmbientCache(), master_seed=2017)
        first = ambient.mpx("news", stereo=True, duration_s=0.1)
        second = ambient.mpx("news", stereo=True, duration_s=0.1)
        assert first is second
        assert np.array_equal(first, second)
        assert ambient.cache.stats["misses"] == 1
        assert ambient.cache.stats["hits"] == 1

    def test_distinct_programs_and_durations_get_distinct_entries(self):
        ambient = CachedAmbient(AmbientCache(), master_seed=2017)
        news = ambient.mpx("news", stereo=True, duration_s=0.1)
        rock = ambient.mpx("rock", stereo=True, duration_s=0.1)
        longer = ambient.mpx("news", stereo=True, duration_s=0.2)
        assert ambient.cache.stats["misses"] == 3
        assert not np.array_equal(news, rock)
        assert longer.size > news.size

    def test_master_seed_changes_the_audio(self):
        cache = AmbientCache()
        a = CachedAmbient(cache, master_seed=1).mpx("news", True, 0.1)
        b = CachedAmbient(cache, master_seed=2).mpx("news", True, 0.1)
        assert cache.stats["misses"] == 2
        assert not np.array_equal(a, b)

    def test_with_variant_yields_independent_audio(self):
        # MRC repetitions must each hear different program audio — the
        # variant is part of both the cache key and the synthesis seed.
        base = CachedAmbient(AmbientCache(), master_seed=2017)
        rep0 = base.with_variant(0)
        rep1 = base.with_variant(1)
        assert rep0.cache is base.cache
        a = rep0.mpx("rock", stereo=False, duration_s=0.1)
        b = rep1.mpx("rock", stereo=False, duration_s=0.1)
        assert base.cache.stats["misses"] == 2
        assert not np.array_equal(a, b)
        # Re-reading either variant hits.
        rep0.mpx("rock", stereo=False, duration_s=0.1)
        assert base.cache.stats["hits"] == 1

    def test_modulated_composite_shared_across_link_configs(self, short_speech):
        # Power, distance and receiver live downstream of the front end,
        # so chains differing only in link budget share one composite.
        ambient = CachedAmbient(AmbientCache(), master_seed=7)
        near = ExperimentChain(power_dbm=-20.0, distance_ft=1, stereo_decode=False)
        far = ExperimentChain(power_dbm=-60.0, distance_ft=20, stereo_decode=False)
        assert near.front_end_key() == far.front_end_key()
        a = ambient.modulated_composite(near, short_speech)
        b = ambient.modulated_composite(far, short_speech)
        assert a is b

    def test_modulated_composite_distinct_per_front_end(self, short_speech):
        ambient = CachedAmbient(AmbientCache(), master_seed=7)
        full = ExperimentChain(stereo_decode=False)
        damped = ExperimentChain(stereo_decode=False, back_amplitude=0.25)
        assert full.front_end_key() != damped.front_end_key()
        ambient.modulated_composite(full, short_speech)
        ambient.modulated_composite(damped, short_speech)
        # Two composites, one shared ambient MPX between them.
        assert ambient.cache.stats["misses"] == 3

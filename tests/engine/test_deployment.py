"""Deployment layer: channel plans, MAC routing, backend determinism.

The acceptance bars from the deployment work:

- same seed -> identical per-device frame outcomes on the serial,
  thread, process and batched backends (the engine's pre-derived-stream
  contract extended to many-device points);
- one ambient synthesis per grid, not per device;
- a warm ``REPRO_CACHE_DIR`` run performs zero ambient syntheses
  regardless of device count.
"""

import numpy as np
import pytest

from repro.engine import (
    AmbientCache,
    ChannelPlan,
    DeploymentScenario,
    DeviceSpec,
    ReceiverPlacement,
    SweepRunner,
    make_roster,
)
from repro.data.mac import SlottedAlohaSimulator
from repro.errors import ConfigurationError
from repro.utils.env import fast_numerics

exact_numerics_only = pytest.mark.skipif(
    fast_numerics(),
    reason="bit-identity is an exact-numerics contract; REPRO_NUMERICS=fast "
    "is gated by the tolerance golden tier",
)


SEED = 2017

# Two free channels in reach => three devices already force ALOHA
# sharing, while frames stay short (tiny payloads) for test speed.
TIGHT_PLAN = ChannelPlan(policy="auto", max_shift_channels=2, slots_per_frame=4)


def small_deployment(**overrides) -> DeploymentScenario:
    kwargs = dict(
        name="test-deploy",
        devices=make_roster(3, payload_format="D{i}"),
        plan=TIGHT_PLAN,
        axes={"n_devices": (1, 3)},
    )
    kwargs.update(overrides)
    return DeploymentScenario(**kwargs)


class TestChannelPlan:
    def test_auto_policy_dedicates_then_shares(self):
        assignment = TIGHT_PLAN.assign(4)
        assert assignment.channels == (49, 51, 51, 51)
        assert assignment.shared == (False, True, True, True)
        assert assignment.sharing_indices == (1, 2, 3)
        assert assignment.n_served == 4

    def test_all_dedicated_when_channels_suffice(self):
        assignment = TIGHT_PLAN.assign(2)
        assert assignment.channels == (49, 51)
        assert assignment.shared == (False, False)

    def test_dedicated_policy_leaves_overflow_unserved(self):
        plan = ChannelPlan(policy="dedicated", max_shift_channels=2)
        assignment = plan.assign(3)
        assert assignment.channels == (49, 51, -1)
        assert assignment.fbacks_hz[2] == 0.0
        assert assignment.shared == (False, False, False)

    def test_aloha_policy_shares_one_channel(self):
        plan = ChannelPlan(policy="aloha")
        assignment = plan.assign(3)
        # The quietest free channel in reach of channel 50 is 53 (-95 dBm).
        assert assignment.channels == (53, 53, 53)
        assert all(assignment.shared)

    def test_single_device_aloha_is_uncontended(self):
        assignment = ChannelPlan(policy="aloha").assign(1)
        assert assignment.shared == (False,)

    def test_snapshot_of_only_free_channels_overflows_to_sharing(self):
        # A snapshot listing nothing but free channels drains the
        # observation pool before the roster is served; allocation must
        # return the prefix (and `auto` then shares), not crash.
        plan = ChannelPlan(
            policy="auto",
            band_snapshot=((49, -90.0), (51, -91.0)),
            max_shift_channels=2,
        )
        assignment = plan.assign(3)
        assert assignment.channels == (51, 49, 49)
        assert assignment.shared == (False, True, True)

    def test_no_free_channel_raises(self):
        crowded = tuple((c, -40.0) for c in range(46, 55))
        plan = ChannelPlan(policy="aloha", band_snapshot=crowded)
        with pytest.raises(ConfigurationError, match="free channel"):
            plan.assign(2)

    def test_fbacks_map_source_to_assigned_channel(self):
        assignment = TIGHT_PLAN.assign(2)
        assert assignment.fbacks_hz == (200e3, 200e3)

    def test_plan_routes_scanner(self):
        assert TIGHT_PLAN.occupied_channels() == [48, 50, 52]
        assert TIGHT_PLAN.free_channels() == [49, 51]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            ChannelPlan(policy="tdma")


class TestFramedAloha:
    def test_frame_outcome_shape_and_determinism(self):
        sim = SlottedAlohaSimulator(n_devices=5, transmit_probability=0.2)
        a = sim.frame_outcome(8, rng=7)
        b = sim.frame_outcome(8, rng=7)
        assert a.shape == (5,)
        assert a.dtype == bool
        assert np.array_equal(a, b)

    def test_single_device_always_succeeds(self):
        sim = SlottedAlohaSimulator(n_devices=1, transmit_probability=1.0)
        assert sim.frame_outcome(4, rng=0).tolist() == [True]

    def test_one_slot_with_contention_always_collides(self):
        sim = SlottedAlohaSimulator(n_devices=3, transmit_probability=1.0)
        assert sim.frame_outcome(1, rng=0).tolist() == [False, False, False]

    def test_framed_success_probability(self):
        sim = SlottedAlohaSimulator(n_devices=3, transmit_probability=0.5)
        assert sim.framed_success_probability(4) == pytest.approx((3 / 4) ** 2)
        assert SlottedAlohaSimulator(1, 0.5).framed_success_probability(4) == 1.0


class TestDeploymentValidation:
    def test_empty_roster_rejected(self):
        with pytest.raises(ConfigurationError):
            DeploymentScenario(name="x", devices=())

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown deployment axes"):
            small_deployment(axes={"n_antennas": (1,)})

    def test_audio_traffic_rejects_mac_axes(self):
        with pytest.raises(ConfigurationError, match="slots_per_frame"):
            DeploymentScenario(
                name="x",
                devices=(DeviceSpec(name="poster"),),
                traffic="audio",
                axes={"slots_per_frame": (2, 4)},
            )

    def test_n_devices_axis_bounded_by_roster(self):
        with pytest.raises(ConfigurationError, match="roster"):
            small_deployment(axes={"n_devices": (1, 9)})

    def test_device_back_amplitude_validated_at_construction(self):
        with pytest.raises(ConfigurationError, match="back_amplitude"):
            DeviceSpec(name="hot", payload=b"X", back_amplitude=0.0)

    def test_frames_traffic_requires_payloads(self):
        with pytest.raises(ConfigurationError, match="empty payload"):
            DeploymentScenario(name="x", devices=(DeviceSpec(name="mute"),))

    def test_compiled_scenario_is_picklable(self):
        small_deployment().compile().require_picklable()


class TestDeploymentDeterminism:
    @pytest.fixture(scope="class")
    def by_backend(self):
        deployment = small_deployment()
        return {
            backend: SweepRunner(
                deployment.compile(),
                rng=SEED,
                cache=AmbientCache(),
                backend=backend,
            ).run()
            for backend in ("serial", "thread", "process", "batched")
        }

    @exact_numerics_only
    def test_identical_per_device_outcomes_across_backends(self, by_backend):
        serial = by_backend["serial"].values
        # Outcomes must be non-trivial for the comparison to mean much.
        assert serial[0]["per_device"][0]["delivered"] >= 0
        assert serial[1]["n_devices"] == 3
        for backend in ("thread", "process", "batched"):
            assert by_backend[backend].values == serial, backend

    def test_repeat_run_reproduces(self):
        deployment = small_deployment()
        first = SweepRunner(
            deployment.compile(), rng=SEED, cache=AmbientCache()
        ).run()
        second = SweepRunner(
            deployment.compile(), rng=SEED, cache=AmbientCache()
        ).run()
        assert first.values == second.values


class TestDeploymentCaching:
    def test_one_ambient_synthesis_per_grid(self):
        cache = AmbientCache()
        deployment = small_deployment()
        SweepRunner(deployment.compile(), rng=SEED, cache=cache).run()
        mpx_keys = [key for key in cache._store if key[0] == "mpx"]
        # One station synthesis for the whole grid — not one per device,
        # not one per grid point.
        assert len(mpx_keys) == 1
        assert cache.stats["hits"] > 0

    def test_warm_persistent_cache_zero_syntheses(self, tmp_path, monkeypatch):
        import repro.engine.cache as cache_mod
        from repro.experiments import deployment_scale

        kwargs = dict(device_counts=(1, 2, 4), frames_per_device=1, rng=SEED)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(cache_mod, "_DEFAULT_CACHE", None)
        cold_cache = cache_mod.default_cache()
        cold = deployment_scale.run(**kwargs)
        assert cold_cache.stats["syntheses"] > 0

        # A fresh default cache on the same spill dir models a fresh
        # process: everything must come from disk, nothing resynthesized.
        monkeypatch.setattr(cache_mod, "_DEFAULT_CACHE", None)
        warm_cache = cache_mod.default_cache()
        warm = deployment_scale.run(**kwargs)
        assert warm == cold
        assert warm_cache.stats["syntheses"] == 0
        assert warm_cache.stats["disk_hits"] > 0


class TestDeploymentMeasures:
    def test_power_and_slot_axes(self):
        deployment = small_deployment(
            axes={"power_dbm": (-30.0,), "slots_per_frame": (2,)},
        )
        result = SweepRunner(
            deployment.compile(), rng=SEED, cache=AmbientCache()
        ).run()
        outcome = result.values[0]
        assert outcome["slots_per_frame"] == 2
        assert outcome["n_devices"] == 3
        assert 0.0 <= outcome["delivery_rate"] <= 1.0
        assert outcome["aggregate_goodput_bps"] >= 0.0

    def test_unserved_devices_deliver_nothing(self):
        deployment = small_deployment(
            devices=make_roster(3, payload_format="D{i}"),
            plan=ChannelPlan(policy="dedicated", max_shift_channels=2),
            axes={},
        )
        outcome = SweepRunner(
            deployment.compile(), rng=SEED, cache=AmbientCache()
        ).run().values[0]
        assert outcome["per_device"][2]["channel"] == -1
        assert outcome["per_device"][2]["delivered"] == 0

    def test_audio_traffic_with_cooperative_receiver(self):
        deployment = DeploymentScenario(
            name="audio-test",
            devices=(DeviceSpec(name="poster", distance_ft=4.0),),
            traffic="audio",
            receiver=ReceiverPlacement(cooperative=True),
            station_stereo=False,
            audio_seconds=0.6,
            axes={"power_dbm": (-20.0,)},
        )
        outcome = SweepRunner(
            deployment.compile(), rng=SEED, cache=AmbientCache()
        ).run().values[0]
        poster = outcome["per_device"][0]
        assert 1.0 <= poster["overlay_pesq"] <= 4.6
        assert 1.0 <= poster["cooperative_pesq"] <= 4.6
        # The whole point of cooperation: the program cancels.
        assert poster["cooperative_pesq"] > poster["overlay_pesq"]

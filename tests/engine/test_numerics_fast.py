"""Behavior of the ``REPRO_NUMERICS=fast`` fused kernels.

Exact mode's contract (bit-identity across backends) is covered by
``test_backends.py`` / ``test_zero_fallback.py``; the tolerance golden
tier (``tests/experiments/test_golden_tolerance.py``) gates fast mode's
figure-level accuracy. This module pins the *mechanics* in between: the
fused kernels stay numerically close to their exact counterparts, carry
the intended single-precision dtypes, genuinely give up bit-identity
(so a silent fall-back to the exact path would be caught), and the
planner prices the speedup.

Tests monkeypatch ``REPRO_NUMERICS`` directly — the helpers read the
environment at call time — so the module passes under either ambient
mode.
"""

import numpy as np
import pytest

from repro.audio.tones import tone
from repro.channel.fading import BodyMotionFading, _interp_rows_fused, stack_envelopes
from repro.channel.link import transmit_batch
from repro.constants import AUDIO_RATE_HZ, MPX_RATE_HZ
from repro.engine import AmbientCache, Scenario, SweepRunner, SweepSpec
from repro.errors import SignalError
from repro.fm.demodulator import fm_demodulate
from repro.utils.env import NUMERICS_ENV_VAR

SEED = 2017


@pytest.fixture
def fast_env(monkeypatch):
    monkeypatch.setenv(NUMERICS_ENV_VAR, "fast")


@pytest.fixture
def exact_env(monkeypatch):
    monkeypatch.setenv(NUMERICS_ENV_VAR, "exact")


class TestFusedInterp:
    def test_matches_per_row_interp(self):
        rng = np.random.default_rng(SEED)
        rows = rng.standard_normal((5, 64)).astype(np.float32) + 3.0
        fused = _interp_rows_fused(rows, 1000)
        x_internal = np.linspace(0.0, 1.0, 64)
        x_out = np.linspace(0.0, 1.0, 1000)
        for r in range(rows.shape[0]):
            exact = np.interp(x_out, x_internal, rows[r].astype(np.float64))
            np.testing.assert_allclose(fused[r], exact, rtol=0, atol=1e-4)

    def test_preserves_endpoints(self):
        rows = np.arange(64, dtype=np.float32)[np.newaxis, :] / 63.0
        fused = _interp_rows_fused(rows, 257)
        assert fused[0, 0] == pytest.approx(0.0, abs=1e-6)
        assert fused[0, -1] == pytest.approx(1.0, abs=1e-6)

    def test_stack_envelopes_dtype_follows_mode(self, monkeypatch):
        def envelopes():
            models = [BodyMotionFading("walking", rng=7) for _ in range(3)]
            return stack_envelopes(models, 4000, MPX_RATE_HZ)

        monkeypatch.setenv(NUMERICS_ENV_VAR, "exact")
        exact = envelopes()
        monkeypatch.setenv(NUMERICS_ENV_VAR, "fast")
        fast = envelopes()
        assert exact.dtype == np.float64
        assert fast.dtype == np.float32
        # Same draws, different interpolation arithmetic: close, not equal.
        np.testing.assert_allclose(fast, exact, rtol=0, atol=1e-3)
        # Unit-RMS normalization holds in both modes.
        np.testing.assert_allclose(
            np.sqrt(np.mean(fast**2, axis=-1)), 1.0, atol=1e-3
        )


class TestFusedDiscriminator:
    @pytest.fixture
    def iq(self):
        rng = np.random.default_rng(SEED)
        phase = np.cumsum(rng.uniform(-0.3, 0.3, size=(3, 2000)), axis=-1)
        return np.exp(1j * phase)

    def test_close_to_exact_path(self, iq, monkeypatch):
        monkeypatch.setenv(NUMERICS_ENV_VAR, "exact")
        exact = fm_demodulate(iq)
        monkeypatch.setenv(NUMERICS_ENV_VAR, "fast")
        fast = fm_demodulate(iq)
        assert fast.shape == exact.shape
        np.testing.assert_allclose(fast, exact, rtol=0, atol=1e-9)

    def test_dtype_follows_input(self, iq, fast_env):
        assert fm_demodulate(iq).dtype == np.float64
        assert fm_demodulate(iq.astype(np.complex64)).dtype == np.float32

    def test_all_zero_rows_still_rejected(self, fast_env):
        iq = np.ones((2, 64), dtype=complex)
        iq[1] = 0.0
        with pytest.raises(SignalError, match="no signal"):
            fm_demodulate(iq)


class TestFastTransmitBatch:
    def _stack(self):
        from test_stages import _chain

        chain = _chain()
        iq = tone(1000.0, 0.02, MPX_RATE_HZ, amplitude=0.5).astype(complex)
        budgets = [
            _chain(power_dbm=p, distance_ft=d).link_budget()
            for p, d in ((-20.0, 2), (-50.0, 8))
        ]
        del chain
        return iq, budgets

    def test_single_precision_rows(self, fast_env):
        iq, budgets = self._stack()
        out = transmit_batch(iq, budgets, [11, 12])
        assert out.dtype == np.complex64
        assert out.shape == (2, iq.size)

    def test_noise_statistics_match_exact(self, monkeypatch):
        iq, budgets = self._stack()
        monkeypatch.setenv(NUMERICS_ENV_VAR, "exact")
        exact = transmit_batch(iq, budgets, [11, 12])
        monkeypatch.setenv(NUMERICS_ENV_VAR, "fast")
        fast = transmit_batch(iq, budgets, [11, 12])
        # Different realization by design...
        assert not np.array_equal(np.asarray(fast, dtype=complex), exact)
        # ...but the same per-row signal-plus-noise power within a few
        # percent (noise dominates the -50 dBm row).
        p_exact = np.mean(np.abs(exact) ** 2, axis=-1)
        p_fast = np.mean(np.abs(fast) ** 2, axis=-1, dtype=np.float64)
        np.testing.assert_allclose(p_fast, p_exact, rtol=0.1)


class TestFastSweep:
    def _scenario(self):
        payload = tone(1000.0, 0.05, AUDIO_RATE_HZ, amplitude=0.9)
        return Scenario(
            name="fastmode",
            sweep=SweepSpec.grid(distance_ft=(2, 4, 8, 16)),
            prepare=lambda gen: {"payload": payload},
            base_chain={
                "program": "silence",
                "power_dbm": -40.0,
                "stereo_decode": False,
                "back_amplitude": 0.25,
            },
            chain_axes=("distance_ft",),
            payload="payload",
            measure=lambda run: float(np.mean(np.abs(run.received.mono))),
        )

    def test_fast_batched_close_to_exact_not_identical(self, monkeypatch):
        monkeypatch.setenv(NUMERICS_ENV_VAR, "exact")
        exact = SweepRunner(
            self._scenario(), rng=SEED, cache=AmbientCache(), backend="batched"
        ).run()
        monkeypatch.setenv(NUMERICS_ENV_VAR, "fast")
        fast = SweepRunner(
            self._scenario(), rng=SEED, cache=AmbientCache(), backend="batched"
        ).run()
        assert fast.values != exact.values
        np.testing.assert_allclose(fast.values, exact.values, rtol=0.05)

    def test_fast_sweep_outputs_stay_json_safe_float64(self, fast_env):
        result = SweepRunner(
            self._scenario(), rng=SEED, cache=AmbientCache(), backend="batched"
        ).run()
        assert all(isinstance(v, float) for v in result.values)


class TestPlannerPricesFastMode:
    def test_batched_estimate_scales_by_fast_vector_factor(self, monkeypatch):
        from repro.engine.planner import CalibrationConstants, PartitionFeatures, estimate

        features = PartitionFeatures(
            label="smartphone/mono@24000",
            positions=(0, 1, 2, 3),
            n_points=4,
            n_samples=24_000,
            stereo=False,
            fading_points=0,
            measure_driven=False,
            cache_warm=True,
            chunk_rows=4,
            batchable=True,
        )
        constants = CalibrationConstants()
        monkeypatch.setenv(NUMERICS_ENV_VAR, "exact")
        exact = estimate(features, constants)
        monkeypatch.setenv(NUMERICS_ENV_VAR, "fast")
        fast = estimate(features, constants)
        assert fast["serial"] == exact["serial"]
        vector_exact = exact["batched"] - constants.chunk_setup_s
        vector_fast = fast["batched"] - constants.chunk_setup_s
        assert vector_fast == pytest.approx(
            vector_exact * constants.fast_vector_factor
        )

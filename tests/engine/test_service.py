"""Async sweep service: submit / status / fetch over the launcher.

Plain ``asyncio.run`` drivers (no async test plugin): each test spins an
event loop, runs the coroutine, and asserts on what came back. The
service-level contract under test is sharing — sequential submissions on
one :class:`SweepService` hit the same warm spill directory, so every
job after the first performs zero syntheses.
"""

import asyncio
import os

import numpy as np
import pytest

from repro.data.fdm import FdmFskModem
from repro.engine import Scenario, SweepRunner, SweepSpec, SweepService
from repro.engine.service import JOB_STATES
from repro.errors import ConfigurationError
from repro.experiments import fig09_mrc as fig09

SEED = 2017


def _draw(run):
    return (run.point["a"], run.point["b"], float(run.rng.random()))


def _explode(run):
    raise ValueError("measure always fails")


def rng_scenario(measure=_draw) -> Scenario:
    return Scenario(
        name="svc",
        sweep=SweepSpec.grid(a=(1, 2, 3), b=(10.0, 20.0)),
        measure=measure,
        cache_ambient=False,
    )


def fig09_scenario() -> Scenario:
    return fig09.build_scenario(
        FdmFskModem(symbol_rate=200),
        distances_ft=(2, 4),
        max_factor=2,
        n_bits=40,
    )


class TestSubmitStatusFetch:
    def test_round_trip_matches_serial(self):
        serial = SweepRunner(rng_scenario(), rng=SEED, backend="serial").run()

        async def drive():
            service = SweepService(n_workers=2, shard_points=2)
            try:
                job_id = await service.submit(rng_scenario(), rng=SEED)
                report = await service.fetch(job_id)
                return job_id, service.status(job_id), report
            finally:
                await service.close()

        job_id, status, report = asyncio.run(drive())
        assert job_id.startswith("svc-")
        assert status.state == "done"
        assert status.state in JOB_STATES
        assert status.points_done == status.points_total == 6
        assert status.shards_done >= 1
        assert status.shards_running == 0
        assert status.wall_s > 0
        assert report.result.values == serial.values

    def test_sequential_jobs_share_the_warm_store(self):
        async def drive():
            service = SweepService(n_workers=2, shard_points=1)
            try:
                first = await service.fetch(
                    await service.submit(fig09_scenario(), rng=SEED)
                )
                second = await service.fetch(
                    await service.submit(fig09_scenario(), rng=SEED)
                )
                return first, second
            finally:
                await service.close()

        first, second = asyncio.run(drive())
        assert first.warm_syntheses > 0
        assert second.warm_syntheses == 0
        assert second.result.cache_stats["syntheses"] == 0
        for ours, reference in zip(second.result.values, first.result.values):
            assert np.array_equal(ours, reference)

    def test_concurrent_jobs_both_complete(self):
        async def drive():
            service = SweepService(n_workers=1, shard_points=3, max_parallel_jobs=2)
            try:
                jobs = [
                    await service.submit(rng_scenario(), rng=SEED) for _ in range(2)
                ]
                return [await service.fetch(job) for job in jobs]
            finally:
                await service.close()

        reports = asyncio.run(drive())
        assert reports[0].result.values == reports[1].result.values

    def test_job_ids_are_unique_and_named(self):
        async def drive():
            service = SweepService(n_workers=1)
            try:
                a = await service.submit(rng_scenario(), rng=SEED)
                b = await service.submit(rng_scenario(), rng=SEED)
                await service.fetch(a)
                await service.fetch(b)
                return a, b
            finally:
                await service.close()

        a, b = asyncio.run(drive())
        assert a != b
        assert a.startswith("svc-") and b.startswith("svc-")


class TestClose:
    def test_close_with_job_in_flight_drains_it(self, tmp_path):
        # close() while the launch is still running: the job must be
        # drained through the launcher's own shutdown path (not orphaned,
        # not killed mid-write), the scratch spill dir removed, and the
        # job fetchable afterwards.
        journal_dir = tmp_path / "jobs"

        async def drive():
            service = SweepService(
                n_workers=2, shard_points=2, journal_dir=str(journal_dir)
            )
            scratch = service._scratch
            job_id = await service.submit(rng_scenario(), rng=SEED)
            # No fetch: the launch is (at best) just starting when close
            # runs. close() must wait it out.
            await service.close()
            return service, job_id, scratch

        service, job_id, scratch = asyncio.run(drive())
        status = service.status(job_id)
        assert status.state == "done"
        assert status.points_done == status.points_total == 6
        assert scratch is not None and not os.path.exists(scratch)
        # The journal recorded the drained job's terminal state, so a
        # restart would not resume it.
        from repro.engine.journal import JobJournal

        assert JobJournal(journal_dir).replay_job(job_id).finished

    def test_second_close_is_a_no_op(self):
        async def drive():
            service = SweepService(n_workers=1)
            job_id = await service.submit(rng_scenario(), rng=SEED)
            await service.fetch(job_id)
            await service.close()
            first_scratch_gone = service._scratch is None
            await service.close()  # must not raise, must not re-gather
            return first_scratch_gone

        assert asyncio.run(drive())

    def test_close_before_any_submit(self):
        async def drive():
            service = SweepService(n_workers=1)
            scratch = service._scratch
            await service.close()
            await service.close()
            return scratch

        scratch = asyncio.run(drive())
        assert not os.path.exists(scratch)


class TestFailures:
    def test_unknown_job_raises_key_error(self):
        async def drive():
            service = SweepService(n_workers=1)
            try:
                service.status("nope-0001")
            finally:
                await service.close()

        with pytest.raises(KeyError, match="nope-0001"):
            asyncio.run(drive())

    def test_unpicklable_scenario_rejected_at_the_front_door(self):
        closure = Scenario(
            name="closure",
            sweep=SweepSpec.grid(a=(1, 2)),
            measure=lambda run: run.point["a"],
            cache_ambient=False,
        )

        async def drive():
            service = SweepService(n_workers=1)
            try:
                await service.submit(closure, rng=SEED)
            finally:
                await service.close()

        with pytest.raises(ConfigurationError, match="shipped"):
            asyncio.run(drive())

    def test_failed_job_reports_and_reraises(self):
        async def drive():
            service = SweepService(n_workers=1, max_retries=0)
            try:
                job_id = await service.submit(rng_scenario(_explode), rng=SEED)
                try:
                    await service.fetch(job_id)
                except Exception as exc:
                    return service.status(job_id), exc
                return service.status(job_id), None
            finally:
                await service.close()

        status, exc = asyncio.run(drive())
        assert status.state == "failed"
        assert "measure always fails" in status.error
        assert exc is not None and "measure always fails" in str(exc)

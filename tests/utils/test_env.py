"""Strict environment-knob parsing tests.

Every ``REPRO_*`` tuning variable funnels through ``repro.utils.env``,
so a malformed value must raise :class:`ConfigurationError` naming the
variable and the offending string — never crash deep in numpy or be
silently clamped.
"""

import pytest

from repro.errors import ConfigurationError
from repro.utils.env import (
    NUMERICS_ENV_VAR,
    env_choice,
    env_float,
    env_int,
    fast_numerics,
    numerics_mode,
)

VAR = "REPRO_TEST_KNOB"


class TestEnvInt:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv(VAR, raising=False)
        assert env_int(VAR, 7) == 7

    def test_blank_returns_default(self, monkeypatch):
        monkeypatch.setenv(VAR, "   ")
        assert env_int(VAR, 7) == 7

    def test_parses_value(self, monkeypatch):
        monkeypatch.setenv(VAR, " 42 ")
        assert env_int(VAR, 7) == 42

    def test_malformed_names_variable_and_value(self, monkeypatch):
        monkeypatch.setenv(VAR, "many")
        with pytest.raises(ConfigurationError, match=rf"{VAR}.*'many'"):
            env_int(VAR, 7)

    def test_float_string_rejected(self, monkeypatch):
        monkeypatch.setenv(VAR, "3.5")
        with pytest.raises(ConfigurationError, match="3.5"):
            env_int(VAR, 7)

    def test_below_minimum_rejected_not_clamped(self, monkeypatch):
        monkeypatch.setenv(VAR, "0")
        with pytest.raises(ConfigurationError, match=">= 1"):
            env_int(VAR, 7, minimum=1)

    def test_minimum_is_inclusive(self, monkeypatch):
        monkeypatch.setenv(VAR, "1")
        assert env_int(VAR, 7, minimum=1) == 1


class TestEnvFloat:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv(VAR, raising=False)
        assert env_float(VAR, 64.0) == 64.0

    def test_parses_value(self, monkeypatch):
        monkeypatch.setenv(VAR, "0.5")
        assert env_float(VAR, 64.0) == 0.5

    def test_malformed_names_variable_and_value(self, monkeypatch):
        monkeypatch.setenv(VAR, "lots")
        with pytest.raises(ConfigurationError, match=rf"{VAR}.*'lots'"):
            env_float(VAR, 64.0)

    def test_non_finite_rejected(self, monkeypatch):
        for raw in ("inf", "nan", "-inf"):
            monkeypatch.setenv(VAR, raw)
            with pytest.raises(ConfigurationError, match="finite"):
                env_float(VAR, 64.0)

    def test_exclusive_minimum_rejects_boundary(self, monkeypatch):
        monkeypatch.setenv(VAR, "0")
        with pytest.raises(ConfigurationError, match="> 0"):
            env_float(VAR, 64.0, minimum=0.0, minimum_exclusive=True)

    def test_inclusive_minimum_accepts_boundary(self, monkeypatch):
        monkeypatch.setenv(VAR, "0")
        assert env_float(VAR, 64.0, minimum=0.0) == 0.0


class TestEnvChoice:
    CHOICES = ("serial", "batched", "auto")

    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv(VAR, raising=False)
        assert env_choice(VAR, None, self.CHOICES) is None
        assert env_choice(VAR, "auto", self.CHOICES) == "auto"

    def test_blank_returns_default(self, monkeypatch):
        monkeypatch.setenv(VAR, "   ")
        assert env_choice(VAR, "auto", self.CHOICES) == "auto"

    def test_normalizes_case_and_whitespace(self, monkeypatch):
        monkeypatch.setenv(VAR, "  Batched ")
        assert env_choice(VAR, None, self.CHOICES) == "batched"

    def test_invalid_names_variable_and_choices(self, monkeypatch):
        monkeypatch.setenv(VAR, "gpu")
        with pytest.raises(ConfigurationError, match=rf"{VAR}.*serial.*'gpu'"):
            env_choice(VAR, None, self.CHOICES)


class TestNumericsMode:
    """``REPRO_NUMERICS`` parses strictly through ``env_choice``."""

    def test_unset_defaults_to_exact(self, monkeypatch):
        monkeypatch.delenv(NUMERICS_ENV_VAR, raising=False)
        assert numerics_mode() == "exact"
        assert not fast_numerics()

    def test_fast_selects_fast(self, monkeypatch):
        monkeypatch.setenv(NUMERICS_ENV_VAR, "fast")
        assert numerics_mode() == "fast"
        assert fast_numerics()

    def test_normalizes_case_and_whitespace(self, monkeypatch):
        monkeypatch.setenv(NUMERICS_ENV_VAR, "  Fast ")
        assert fast_numerics()

    def test_explicit_exact_accepted(self, monkeypatch):
        monkeypatch.setenv(NUMERICS_ENV_VAR, "exact")
        assert numerics_mode() == "exact"

    def test_typo_names_variable_and_choices(self, monkeypatch):
        monkeypatch.setenv(NUMERICS_ENV_VAR, "quick")
        with pytest.raises(
            ConfigurationError, match=r"REPRO_NUMERICS.*exact.*fast.*'quick'"
        ):
            numerics_mode()

    def test_blank_defaults_to_exact(self, monkeypatch):
        monkeypatch.setenv(NUMERICS_ENV_VAR, "   ")
        assert numerics_mode() == "exact"


class TestEngineKnobsAreStrict:
    """The engine's own knobs route through the strict parser."""

    def test_batch_budget_malformed(self, monkeypatch):
        from repro.engine.batch_backend import BATCH_MEMORY_ENV_VAR, batch_memory_budget_mb

        monkeypatch.setenv(BATCH_MEMORY_ENV_VAR, "64MB")
        with pytest.raises(ConfigurationError, match=r"REPRO_BATCH_MAX_MB.*'64MB'"):
            batch_memory_budget_mb()

    def test_batch_budget_must_be_positive(self, monkeypatch):
        from repro.engine.batch_backend import BATCH_MEMORY_ENV_VAR, batch_memory_budget_mb

        monkeypatch.setenv(BATCH_MEMORY_ENV_VAR, "0")
        with pytest.raises(ConfigurationError, match="> 0"):
            batch_memory_budget_mb()

    def test_plan_cache_malformed(self, monkeypatch):
        from repro.dsp.plan_cache import PLAN_CACHE_ENV_VAR, plan_cache_capacity

        monkeypatch.setenv(PLAN_CACHE_ENV_VAR, "big")
        with pytest.raises(ConfigurationError, match=r"REPRO_DSP_PLAN_CACHE.*'big'"):
            plan_cache_capacity()

    def test_workers_malformed(self, monkeypatch):
        from repro.engine.runner import WORKERS_ENV_VAR, default_max_workers

        monkeypatch.setenv(WORKERS_ENV_VAR, "4.5")
        with pytest.raises(ConfigurationError, match="4.5"):
            default_max_workers()

    def test_backend_typo_names_variable_and_choices(self, monkeypatch):
        from repro.engine.runner import BACKEND_ENV_VAR, default_backend

        monkeypatch.setenv(BACKEND_ENV_VAR, "gpu")
        with pytest.raises(
            ConfigurationError, match=r"REPRO_SWEEP_BACKEND.*auto.*'gpu'"
        ):
            default_backend()

    def test_planner_calibration_path_must_exist(self, monkeypatch, tmp_path):
        from repro.engine.planner import CALIBRATION_ENV_VAR, load_calibration

        monkeypatch.setenv(CALIBRATION_ENV_VAR, str(tmp_path / "missing.json"))
        with pytest.raises(
            ConfigurationError, match="REPRO_PLANNER_CALIBRATION"
        ):
            load_calibration()

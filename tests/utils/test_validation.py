"""Validation helper tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SignalError
from repro.utils.validation import (
    ensure_1d,
    ensure_equal_length,
    ensure_in_range,
    ensure_positive,
    ensure_real,
)


class TestEnsure1d:
    def test_accepts_list(self):
        out = ensure_1d([1.0, 2.0])
        assert isinstance(out, np.ndarray)
        assert out.dtype == float

    def test_preserves_complex(self):
        out = ensure_1d(np.array([1 + 1j]))
        assert np.iscomplexobj(out)

    def test_rejects_2d(self):
        with pytest.raises(SignalError, match="must be 1-D"):
            ensure_1d(np.zeros((2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(SignalError, match="non-empty"):
            ensure_1d(np.array([]))

    def test_error_names_argument(self):
        with pytest.raises(SignalError, match="myarg"):
            ensure_1d(np.zeros((2, 2)), "myarg")


class TestEnsureReal:
    def test_rejects_complex(self):
        with pytest.raises(SignalError, match="real"):
            ensure_real(np.array([1 + 1j]))

    def test_accepts_ints(self):
        out = ensure_real(np.array([1, 2, 3]))
        assert out.dtype == float


class TestEnsureEqualLength:
    def test_passes_equal(self):
        ensure_equal_length(np.zeros(3), np.zeros(3))

    def test_rejects_unequal(self):
        with pytest.raises(SignalError, match="equal length"):
            ensure_equal_length(np.zeros(3), np.zeros(4))


class TestEnsurePositive:
    def test_returns_float(self):
        assert ensure_positive(3, "x") == 3.0

    @pytest.mark.parametrize("bad", [0, -1.0, float("nan"), float("inf"), "5"])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ConfigurationError):
            ensure_positive(bad, "x")


class TestEnsureInRange:
    def test_accepts_bounds(self):
        assert ensure_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert ensure_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError):
            ensure_in_range(1.5, "x", 0.0, 1.0)

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            ensure_in_range(float("nan"), "x", 0.0, 1.0)

"""RNG plumbing tests."""

import numpy as np
import pytest

from repro.utils.rand import as_generator, child_generator


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            as_generator("seed")


class TestChildGenerator:
    def test_children_with_same_keys_match(self):
        a = child_generator(1, "x", 5).integers(0, 1000, size=5)
        b = child_generator(1, "x", 5).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_children_with_different_keys_differ(self):
        a = child_generator(1, "x", 5).integers(0, 1000, size=20)
        b = child_generator(1, "y", 5).integers(0, 1000, size=20)
        assert not np.array_equal(a, b)

    def test_shared_parent_advances_state(self):
        parent = np.random.default_rng(3)
        a = child_generator(parent, "k").integers(0, 1000, size=10)
        b = child_generator(parent, "k").integers(0, 1000, size=10)
        # Same key but the parent advanced: streams should differ.
        assert not np.array_equal(a, b)

"""Unit-conversion tests, including hypothesis round-trip properties."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.units import (
    db_to_linear,
    dbm_to_watts,
    feet_to_meters,
    linear_to_db,
    meters_to_feet,
    power_ratio_db,
    voltage_ratio_db,
    watts_to_dbm,
    wavelength_m,
)


class TestPowerConversions:
    def test_zero_dbm_is_one_milliwatt(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_watts_to_dbm_known_value(self):
        assert watts_to_dbm(1e-3) == pytest.approx(0.0)

    def test_watts_to_dbm_rejects_zero(self):
        with pytest.raises(ValueError):
            watts_to_dbm(0.0)

    def test_watts_to_dbm_rejects_negative_array(self):
        with pytest.raises(ValueError):
            watts_to_dbm(np.array([1.0, -1.0]))

    @given(st.floats(min_value=-120.0, max_value=80.0))
    def test_dbm_round_trip(self, dbm):
        assert watts_to_dbm(dbm_to_watts(dbm)) == pytest.approx(dbm, abs=1e-9)

    def test_array_input_preserves_shape(self):
        out = dbm_to_watts(np.array([-10.0, 0.0, 10.0]))
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)


class TestDbRatios:
    def test_db_to_linear_3db_doubles(self):
        assert db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)

    @given(st.floats(min_value=-60.0, max_value=60.0))
    def test_db_round_trip(self, db):
        assert linear_to_db(db_to_linear(db)) == pytest.approx(db, abs=1e-9)

    def test_power_ratio_db(self):
        assert power_ratio_db(10.0, 1.0) == pytest.approx(10.0)

    def test_voltage_ratio_uses_20log(self):
        assert voltage_ratio_db(10.0, 1.0) == pytest.approx(20.0)

    def test_voltage_ratio_rejects_zero(self):
        with pytest.raises(ValueError):
            voltage_ratio_db(0.0, 1.0)


class TestDistanceAndWavelength:
    def test_feet_round_trip(self):
        assert meters_to_feet(feet_to_meters(12.0)) == pytest.approx(12.0)

    def test_one_foot_in_meters(self):
        assert feet_to_meters(1.0) == pytest.approx(0.3048)

    def test_fm_wavelength_about_3m(self):
        lam = wavelength_m(91.5e6)
        assert 3.0 < lam < 3.5

    def test_wavelength_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            wavelength_m(0.0)

    @given(st.floats(min_value=1e3, max_value=1e12))
    def test_wavelength_inverse_relation(self, freq):
        assert wavelength_m(freq) * freq == pytest.approx(299_792_458.0, rel=1e-9)

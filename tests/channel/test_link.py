"""Link-budget tests — the paper's evaluation anchors."""

import numpy as np
import pytest

from repro.channel.antenna import CAR_WHIP, HEADPHONE_WIRE, MEANDER_SHIRT
from repro.channel.link import BackscatterLink, LinkBudget
from repro.errors import LinkBudgetError


def budget(power=-40.0, distance=8.0, **kwargs):
    return LinkBudget(
        ambient_power_at_device_dbm=power, distance_ft=distance, **kwargs
    )


class TestLinkBudget:
    def test_snr_decreases_with_distance(self):
        snrs = [budget(distance=d).rf_snr_db() for d in (2, 8, 32)]
        assert snrs[0] > snrs[1] > snrs[2]

    def test_snr_increases_with_power_in_thermal_regime(self):
        # At low ambient power the floor is thermal, so SNR tracks power.
        assert budget(power=-50.0).rf_snr_db() > budget(power=-60.0).rf_snr_db()

    def test_leakage_floor_engages_at_high_power(self):
        # At -20 dBm the adjacent leakage exceeds the thermal-class floor.
        b = budget(power=-20.0)
        assert b.noise_floor_dbm() == pytest.approx(b.ambient_leakage_dbm())

    def test_thermal_floor_at_low_power(self):
        b = budget(power=-60.0)
        assert b.noise_floor_dbm() == b.receiver_noise_floor_dbm

    def test_paper_anchor_100bps_at_minus60(self):
        # Fig. 8a: at -60 dBm the link should be above the FM threshold at
        # 4 ft and clearly below it by 16 ft.
        assert budget(power=-60.0, distance=4.0).rf_snr_db() > -3.0
        assert budget(power=-60.0, distance=16.0).rf_snr_db() < 0.0

    def test_car_link_better_than_phone(self):
        phone = budget(receiver_antenna=HEADPHONE_WIRE)
        car = budget(
            receiver_antenna=CAR_WHIP,
            receiver_noise_floor_dbm=-100.0,
            adjacent_suppression_db=85.0,
        )
        assert car.rf_snr_db() > phone.rf_snr_db()

    def test_fabric_antenna_costs_snr(self):
        normal = budget()
        fabric = budget(device_antenna=MEANDER_SHIRT)
        assert fabric.rf_snr_db() < normal.rf_snr_db()

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(LinkBudgetError):
            budget(distance=0.0)


class TestBackscatterLink:
    def test_transmit_hits_target_snr(self, rng):
        b = budget(power=-40.0, distance=4.0)
        link = BackscatterLink(b)
        iq = np.exp(1j * 2 * np.pi * 0.01 * np.arange(100_000))
        out = link.transmit(iq, 480_000.0, rng)
        noise = out - iq
        measured = 10 * np.log10(np.mean(np.abs(iq) ** 2) / np.mean(np.abs(noise) ** 2))
        assert measured == pytest.approx(b.rf_snr_db(), abs=0.5)

    def test_fading_modulates_amplitude(self, rng):
        from repro.channel.fading import BodyMotionFading

        b = budget()
        link = BackscatterLink(b, fading=BodyMotionFading("running", rng=1))
        iq = np.ones(48_000, dtype=complex)
        out = link.transmit(iq, 48_000.0, rng)
        # Amplitude should now vary beyond what noise alone causes.
        smooth = np.convolve(np.abs(out), np.ones(480) / 480, mode="valid")
        assert np.std(smooth) > 0.02

    def test_rejects_real_input(self, rng):
        link = BackscatterLink(budget())
        with pytest.raises(LinkBudgetError):
            link.transmit(np.ones(100), 480_000.0, rng)

"""Antenna model tests."""

import pytest

from repro.channel.antenna import (
    BOWTIE_POSTER,
    CAR_WHIP,
    DIPOLE_POSTER,
    HEADPHONE_WIRE,
    MEANDER_SHIRT,
    Antenna,
)
from repro.errors import ConfigurationError


class TestAntenna:
    def test_effective_gain_includes_efficiency(self):
        ant = Antenna(name="x", gain_dbi=2.0, efficiency=0.5)
        assert ant.effective_gain_db == pytest.approx(2.0 - 3.01, abs=0.02)

    def test_body_loss_subtracts(self):
        ant = Antenna(name="x", gain_dbi=0.0, efficiency=1.0, body_loss_db=3.0)
        assert ant.effective_gain_db == pytest.approx(-3.0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigurationError):
            Antenna(name="x", gain_dbi=0.0, efficiency=0.0)

    def test_rejects_negative_body_loss(self):
        with pytest.raises(ConfigurationError):
            Antenna(name="x", gain_dbi=0.0, efficiency=0.5, body_loss_db=-1.0)


class TestPrototypes:
    def test_poster_antennas_beat_fabric(self):
        assert DIPOLE_POSTER.effective_gain_db > MEANDER_SHIRT.effective_gain_db
        assert BOWTIE_POSTER.effective_gain_db > MEANDER_SHIRT.effective_gain_db

    def test_car_beats_headphone_wire(self):
        # Section 5.4's premise: car antennas outperform phone antennas.
        assert CAR_WHIP.effective_gain_db > HEADPHONE_WIRE.effective_gain_db + 3

    def test_bowtie_wider_band_than_dipole(self):
        assert BOWTIE_POSTER.bandwidth_mhz > DIPOLE_POSTER.bandwidth_mhz

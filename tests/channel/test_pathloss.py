"""Path-loss model tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.pathloss import (
    free_space_path_loss_db,
    friis_received_power_dbm,
    log_distance_path_loss_db,
)
from repro.errors import LinkBudgetError

FM = 91.5e6


class TestFreeSpace:
    def test_known_value(self):
        # FSPL at 100 m, 91.5 MHz: 20 log10(4 pi 100 / 3.276) ~= 51.7 dB.
        assert free_space_path_loss_db(100.0, FM) == pytest.approx(51.7, abs=0.2)

    def test_six_db_per_doubling(self):
        l1 = free_space_path_loss_db(10.0, FM)
        l2 = free_space_path_loss_db(20.0, FM)
        assert l2 - l1 == pytest.approx(6.02, abs=0.05)

    def test_near_field_clamped(self):
        # Below lambda/2pi the far-field formula would predict path gain;
        # we clamp to the boundary value, 20 log10(2) ~= 6.02 dB.
        boundary = free_space_path_loss_db(3.276 / (2 * np.pi), FM)
        assert free_space_path_loss_db(0.01, FM) == pytest.approx(boundary, abs=0.05)
        assert boundary == pytest.approx(6.02, abs=0.05)

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(LinkBudgetError):
            free_space_path_loss_db(0.0, FM)

    @given(st.floats(min_value=1.0, max_value=1e4))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_distance(self, d):
        assert free_space_path_loss_db(d * 2, FM) > free_space_path_loss_db(d, FM)


class TestFriis:
    def test_gains_add(self):
        base = friis_received_power_dbm(0.0, 100.0, FM)
        with_gain = friis_received_power_dbm(0.0, 100.0, FM, tx_gain_dbi=3.0, rx_gain_dbi=2.0)
        assert with_gain - base == pytest.approx(5.0)


class TestLogDistance:
    def test_reduces_to_free_space_at_reference(self):
        assert log_distance_path_loss_db(100.0, FM, reference_m=100.0) == pytest.approx(
            free_space_path_loss_db(100.0, FM)
        )

    def test_exponent_steepens_slope(self):
        l_n2 = log_distance_path_loss_db(1000.0, FM, exponent=2.0)
        l_n35 = log_distance_path_loss_db(1000.0, FM, exponent=3.5)
        assert l_n35 > l_n2

    def test_shadowing_is_random_but_seeded(self):
        a = log_distance_path_loss_db(500.0, FM, shadowing_sigma_db=8.0, rng=1)
        b = log_distance_path_loss_db(500.0, FM, shadowing_sigma_db=8.0, rng=1)
        c = log_distance_path_loss_db(500.0, FM, shadowing_sigma_db=8.0, rng=2)
        assert a == b
        assert a != c

    def test_rejects_bad_exponent(self):
        with pytest.raises(LinkBudgetError):
            log_distance_path_loss_db(100.0, FM, exponent=0.0)

"""Body-motion fading tests."""

import numpy as np
import pytest

from repro.channel.fading import MOTION_PROFILES, BodyMotionFading
from repro.errors import ConfigurationError


class TestProfiles:
    def test_three_paper_states_exist(self):
        assert set(MOTION_PROFILES) == {"standing", "walking", "running"}

    def test_running_fades_harder_than_standing(self):
        assert (
            MOTION_PROFILES["running"].k_factor_db
            < MOTION_PROFILES["standing"].k_factor_db
        )


class TestEnvelope:
    def test_unit_mean_square(self):
        env = BodyMotionFading("walking", rng=0).envelope(48_000, 48_000.0)
        assert np.mean(env**2) == pytest.approx(1.0, rel=1e-6)

    def test_positive(self):
        env = BodyMotionFading("running", rng=1).envelope(10_000, 48_000.0)
        assert np.all(env > 0)

    def test_standing_varies_less_than_running(self):
        std_s = np.std(BodyMotionFading("standing", rng=2).envelope(96_000, 48_000.0))
        std_r = np.std(BodyMotionFading("running", rng=2).envelope(96_000, 48_000.0))
        assert std_r > std_s

    def test_rejects_unknown_profile(self):
        with pytest.raises(ConfigurationError):
            BodyMotionFading("flying")

    def test_deterministic_with_seed(self):
        a = BodyMotionFading("walking", rng=3).envelope(1000, 48_000.0)
        b = BodyMotionFading("walking", rng=3).envelope(1000, 48_000.0)
        assert np.array_equal(a, b)

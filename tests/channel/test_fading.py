"""Body-motion fading tests."""

import numpy as np
import pytest

from repro.channel.fading import (
    MOTION_PROFILES,
    BodyMotionFading,
    MotionFadingSpec,
    stack_envelopes,
)
from repro.errors import ConfigurationError


class TestProfiles:
    def test_three_paper_states_exist(self):
        assert set(MOTION_PROFILES) == {"standing", "walking", "running"}

    def test_running_fades_harder_than_standing(self):
        assert (
            MOTION_PROFILES["running"].k_factor_db
            < MOTION_PROFILES["standing"].k_factor_db
        )


class TestEnvelope:
    def test_unit_mean_square(self):
        env = BodyMotionFading("walking", rng=0).envelope(48_000, 48_000.0)
        assert np.mean(env**2) == pytest.approx(1.0, rel=1e-6)

    def test_positive(self):
        env = BodyMotionFading("running", rng=1).envelope(10_000, 48_000.0)
        assert np.all(env > 0)

    def test_standing_varies_less_than_running(self):
        std_s = np.std(BodyMotionFading("standing", rng=2).envelope(96_000, 48_000.0))
        std_r = np.std(BodyMotionFading("running", rng=2).envelope(96_000, 48_000.0))
        assert std_r > std_s

    def test_rejects_unknown_profile(self):
        with pytest.raises(ConfigurationError):
            BodyMotionFading("flying")

    def test_deterministic_with_seed(self):
        a = BodyMotionFading("walking", rng=3).envelope(1000, 48_000.0)
        b = BodyMotionFading("walking", rng=3).envelope(1000, 48_000.0)
        assert np.array_equal(a, b)


class TestEnvelopeBatch:
    def test_rows_bit_identical_to_successive_scalar_calls(self):
        batch = BodyMotionFading("walking", rng=7).envelope_batch(5000, 48_000.0, 4)
        serial = BodyMotionFading("walking", rng=7)
        for i in range(4):
            assert np.array_equal(batch[i], serial.envelope(5000, 48_000.0)), i

    def test_empty_batch(self):
        assert BodyMotionFading("walking", rng=0).envelope_batch(100, 48e3, 0).shape == (0, 100)

    def test_rejects_negative_rows(self):
        with pytest.raises(ConfigurationError):
            BodyMotionFading("walking", rng=0).envelope_batch(100, 48e3, -1)


class TestStackEnvelopes:
    def test_distinct_models_and_mixed_profiles(self):
        models = [
            BodyMotionFading("walking", rng=1),
            BodyMotionFading("running", rng=2),
            BodyMotionFading("walking", rng=3),
        ]
        refs = [
            BodyMotionFading("walking", rng=1),
            BodyMotionFading("running", rng=2),
            BodyMotionFading("walking", rng=3),
        ]
        stack = stack_envelopes(models, 4000, 48_000.0)
        for i, ref in enumerate(refs):
            assert np.array_equal(stack[i], ref.envelope(4000, 48_000.0)), i

    def test_shared_stateful_model_consumes_stream_in_list_order(self):
        shared = BodyMotionFading("running", rng=9)
        ref = BodyMotionFading("running", rng=9)
        stack = stack_envelopes([shared, shared], 4000, 48_000.0)
        assert np.array_equal(stack[0], ref.envelope(4000, 48_000.0))
        assert np.array_equal(stack[1], ref.envelope(4000, 48_000.0))

    def test_foreign_fading_models_evaluate_at_their_slot(self):
        class Constant:
            def envelope(self, n_samples, sample_rate):
                return np.full(n_samples, 0.5)

        stack = stack_envelopes(
            [Constant(), BodyMotionFading("walking", rng=4)], 1000, 48_000.0
        )
        assert np.array_equal(stack[0], np.full(1000, 0.5))
        assert np.array_equal(
            stack[1], BodyMotionFading("walking", rng=4).envelope(1000, 48_000.0)
        )


class TestMotionFadingSpec:
    def test_picklable_and_frozen(self):
        import pickle

        spec = MotionFadingSpec("running")
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_rejects_unknown_profile(self):
        with pytest.raises(ConfigurationError):
            MotionFadingSpec("flying")

    def test_build_is_deterministic_per_generator(self):
        spec = MotionFadingSpec("walking")
        a = spec.build(5).envelope(1000, 48_000.0)
        b = spec.build(5).envelope(1000, 48_000.0)
        assert np.array_equal(a, b)

"""Noise model tests."""

import numpy as np
import pytest

from repro.channel.noise import awgn, complex_awgn, noise_power_dbm


class TestNoisePower:
    def test_ktb_200khz(self):
        # kTB for 200 kHz at 290 K is about -120.8 dBm.
        assert noise_power_dbm(200e3) == pytest.approx(-120.8, abs=0.3)

    def test_noise_figure_adds(self):
        assert noise_power_dbm(200e3, 10.0) == pytest.approx(
            noise_power_dbm(200e3) + 10.0
        )


class TestAwgn:
    def test_target_snr(self, rng):
        x = np.sin(2 * np.pi * 0.01 * np.arange(100_000))
        y = awgn(x, 20.0, rng)
        noise = y - x
        measured = 10 * np.log10(np.mean(x**2) / np.mean(noise**2))
        assert measured == pytest.approx(20.0, abs=0.3)

    def test_deterministic_with_seed(self):
        x = np.ones(100)
        assert np.array_equal(awgn(x, 10, 42), awgn(x, 10, 42))


class TestComplexAwgn:
    def test_target_snr(self, rng):
        x = np.exp(1j * 2 * np.pi * 0.01 * np.arange(100_000))
        y = complex_awgn(x, 15.0, rng)
        noise = y - x
        measured = 10 * np.log10(np.mean(np.abs(x) ** 2) / np.mean(np.abs(noise) ** 2))
        assert measured == pytest.approx(15.0, abs=0.3)

    def test_noise_split_between_i_and_q(self, rng):
        x = np.ones(200_000, dtype=complex)
        y = complex_awgn(x, 0.0, rng)
        noise = y - x
        assert np.var(noise.real) == pytest.approx(np.var(noise.imag), rel=0.05)

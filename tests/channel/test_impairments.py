"""Oscillator impairment tests."""

import numpy as np
import pytest

from repro.channel.impairments import (
    apply_frequency_drift,
    apply_frequency_offset,
    lc_tank_tolerance_hz,
)
from repro.errors import ConfigurationError
from repro.fm.demodulator import fm_demodulate
from repro.fm.modulator import fm_modulate

FS = 480_000.0


class TestFrequencyOffset:
    def test_offset_shifts_spectrum(self):
        iq = np.ones(4800, dtype=complex)
        shifted = apply_frequency_offset(iq, 10_000.0, FS)
        phase_steps = np.angle(shifted[1:] * np.conj(shifted[:-1]))
        assert np.allclose(phase_steps * FS / (2 * np.pi), 10_000.0, atol=1.0)

    def test_fm_tolerates_small_offset(self):
        # A static offset demodulates to a DC term; the audio is intact.
        mpx = 0.7 * np.sin(2 * np.pi * 2000 * np.arange(48_000) / FS)
        iq = apply_frequency_offset(fm_modulate(mpx), 1200.0, FS)
        recovered = fm_demodulate(iq)
        dc = np.mean(recovered)
        assert dc == pytest.approx(1200.0 / 75e3, rel=0.05)
        assert np.max(np.abs((recovered - dc)[10:] - mpx[10:])) < 0.02

    def test_rejects_real_input(self):
        with pytest.raises(ConfigurationError):
            apply_frequency_offset(np.ones(10), 100.0, FS)


class TestDrift:
    def test_drift_produces_ramp(self):
        iq = np.ones(48_000, dtype=complex)
        drifted = apply_frequency_drift(iq, 10_000.0, FS)  # 10 kHz/s
        recovered = fm_demodulate(drifted)
        inst = recovered * 75e3
        # After 0.1 s the instantaneous frequency is ~1 kHz.
        assert inst[-1] > inst[4800] > inst[10]


class TestTolerance:
    def test_lc_tank_offset_inside_channel(self):
        # 2000 ppm of 600 kHz = 1.2 kHz: tiny against 200 kHz channels,
        # which is why the paper's open-loop oscillator needs no trimming.
        assert lc_tank_tolerance_hz() == pytest.approx(1200.0)
        assert lc_tank_tolerance_hz() < 200e3 / 10

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            lc_tank_tolerance_hz(nominal_hz=-1.0)

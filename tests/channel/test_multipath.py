"""Multipath channel tests."""

import numpy as np
import pytest

from repro.channel.multipath import MultipathChannel, two_ray_gain_db
from repro.errors import ConfigurationError


class TestTwoRay:
    def test_large_distance_approaches_deep_loss(self):
        # Far beyond the breakpoint the two rays nearly cancel.
        near = two_ray_gain_db(100.0, 91.5e6)
        far = two_ray_gain_db(50_000.0, 91.5e6)
        assert far < near

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            two_ray_gain_db(0.0, 91.5e6)


class TestMultipathChannel:
    def test_single_tap_identity(self):
        channel = MultipathChannel((0,), (1.0 + 0j,))
        x = np.exp(1j * np.linspace(0, 10, 100))
        assert np.allclose(channel.apply(x), x)

    def test_delayed_tap(self):
        channel = MultipathChannel((0, 3), (1.0 + 0j, 0.5 + 0j))
        x = np.zeros(10, dtype=complex)
        x[0] = 1.0
        y = channel.apply(x)
        assert y[0] == 1.0
        assert y[3] == 0.5

    def test_flat_gain_is_tap_sum(self):
        channel = MultipathChannel((0, 2), (1.0 + 0j, 0.25 - 0.25j))
        assert channel.flat_gain() == (1.25 - 0.25j)

    def test_random_urban_first_tap_dominant(self):
        channel = MultipathChannel.random_urban(480_000.0, rng=0)
        assert abs(channel.gains[0]) >= max(abs(g) for g in channel.gains[1:])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            MultipathChannel((0, 1), (1.0,))

    def test_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError):
            MultipathChannel((-1,), (1.0,))

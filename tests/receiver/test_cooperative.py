"""Cooperative cancellation tests (paper section 3.3)."""

import numpy as np
import pytest

from repro.audio.metrics import snr_db
from repro.audio.speech import speech_like
from repro.errors import SynchronizationError
from repro.experiments.fig12_pesq_cooperative import (
    PREAMBLE_PILOT_BOOST,
    PREAMBLE_SECONDS,
    build_coop_payload,
)
from repro.receiver.cooperative import CooperativeReceiver

FS = 48_000


@pytest.fixture(scope="module")
def scenario():
    ambient = 0.5 * speech_like(2.6, FS, rng=21, pitch_hz=100)
    payload_speech = speech_like(1.8, FS, rng=3, amplitude=0.9)
    payload = build_coop_payload(payload_speech)
    n = payload.size
    phone1 = 0.45 * ambient[:n] + 0.45 * payload
    return ambient, payload_speech, phone1, n


def receiver():
    return CooperativeReceiver(
        preamble_seconds=PREAMBLE_SECONDS, preamble_pilot_boost=PREAMBLE_PILOT_BOOST
    )


class TestCancellation:
    def test_recovers_payload_with_time_offset(self, scenario):
        ambient, speech, phone1, n = scenario
        offset = 3840  # 80 ms
        phone2 = (0.45 * ambient)[offset:n]
        result = receiver().cancel(phone1, phone2)
        m = min(speech.size, result.backscatter_audio.size)
        assert result.lag_samples == offset
        assert snr_db(0.85 * speech[:m], result.backscatter_audio[:m]) > 25

    def test_corrects_gain_step(self, scenario):
        # Emulate the receiver's AGC stepping down when the payload starts.
        ambient, speech, phone1, n = scenario
        step_at = int(PREAMBLE_SECONDS * FS)
        stepped = phone1.copy()
        stepped[step_at:] *= 0.6
        phone2 = (0.45 * ambient)[:n]
        result = receiver().cancel(stepped, phone2)
        assert result.pilot_gain_ratio == pytest.approx(1 / 0.6, rel=0.1)
        m = min(speech.size, result.backscatter_audio.size)
        assert snr_db(0.85 * speech[:m], result.backscatter_audio[:m]) > 20

    def test_amplitude_mismatch_fitted(self, scenario):
        ambient, speech, phone1, n = scenario
        phone2 = 2.3 * (0.45 * ambient)[:n]  # phone 2 louder
        result = receiver().cancel(phone1, phone2)
        assert result.ambient_scale == pytest.approx(1 / 2.3, rel=0.05)

    def test_rejects_silent_phone2(self, scenario):
        _, _, phone1, n = scenario
        with pytest.raises(SynchronizationError):
            receiver().cancel(phone1, np.zeros(n))

"""Generic FM receiver chain tests."""

import numpy as np
import pytest

from repro.audio.tones import tone
from repro.constants import AUDIO_RATE_HZ
from repro.dsp.spectrum import tone_snr_db
from repro.errors import ConfigurationError
from repro.fm.mpx import MpxComponents, compose_mpx
from repro.fm.modulator import fm_modulate
from repro.receiver.car import CarReceiver
from repro.receiver.fm_receiver import (
    FMReceiver,
    receive_stereo_batch,
    supports_mono_batch,
    supports_stereo_batch,
)
from repro.receiver.smartphone import SmartphoneReceiver


def broadcast_iq(left_hz=1000, right_hz=None, duration=0.5):
    left = tone(left_hz, duration, AUDIO_RATE_HZ, amplitude=0.8)
    right = tone(right_hz, duration, AUDIO_RATE_HZ, amplitude=0.8) if right_hz else None
    return fm_modulate(compose_mpx(MpxComponents(left=left, right=right)))


class TestReceive:
    def test_mono_reception(self):
        received = FMReceiver().receive(broadcast_iq())
        assert not received.stereo_locked
        assert tone_snr_db(received.mono, AUDIO_RATE_HZ, 1000) > 30

    def test_stereo_reception(self):
        received = FMReceiver().receive(broadcast_iq(1000, 3000))
        assert received.stereo_locked
        assert tone_snr_db(received.left, AUDIO_RATE_HZ, 1000) > 20
        assert tone_snr_db(received.right, AUDIO_RATE_HZ, 3000) > 20

    def test_stereo_incapable_receiver_stays_mono(self):
        receiver = FMReceiver(stereo_capable=False)
        received = receiver.receive(broadcast_iq(1000, 3000))
        assert not received.stereo_locked
        assert np.array_equal(received.left, received.right)

    def test_audio_cutoff_applies(self):
        from repro.dsp.spectrum import band_power

        wide = FMReceiver(audio_cutoff_hz=15_000.0).receive(broadcast_iq(9000))
        narrow = FMReceiver(audio_cutoff_hz=5000.0).receive(broadcast_iq(9000))
        p_wide = band_power(wide.mono, AUDIO_RATE_HZ, 8500, 9500)
        p_narrow = band_power(narrow.mono, AUDIO_RATE_HZ, 8500, 9500)
        assert p_narrow < 1e-4 * p_wide

    def test_mpx_exposed_for_diagnostics(self):
        received = FMReceiver().receive(broadcast_iq())
        assert received.mpx.size > 0

    def test_difference_property(self):
        received = FMReceiver().receive(broadcast_iq(1000, 3000))
        assert np.allclose(
            received.difference, 0.5 * (received.left - received.right)
        )


class TestReceiveStereoBatch:
    def test_rows_bit_identical_to_serial_receive(self):
        # One stereo broadcast, one mono broadcast (pilot absent -> the
        # row falls back to mono inside the batch), decoded together.
        iq_batch = np.stack([broadcast_iq(1000, 3000), broadcast_iq(2000)])
        receivers = [FMReceiver(), FMReceiver()]
        rows = receive_stereo_batch(receivers, iq_batch)
        assert [r.stereo_locked for r in rows] == [True, False]
        for i in range(2):
            serial = FMReceiver().receive(iq_batch[i])
            assert np.array_equal(rows[i].left, serial.left), i
            assert np.array_equal(rows[i].right, serial.right), i
            assert rows[i].stereo_locked == serial.stereo_locked, i
            assert np.array_equal(rows[i].mpx, serial.mpx), i

    def test_stochastic_receivers_draw_per_row(self):
        # Smartphone codec noise and the car cabin path draw from each
        # receiver's own generator, so a batch with per-row seeds must
        # match per-row serial receives exactly.
        iq_batch = np.stack([broadcast_iq(1000, 3000), broadcast_iq(1000, 3000)])
        for build in (
            lambda seed: SmartphoneReceiver(rng=seed),
            lambda seed: CarReceiver(rng=seed),
        ):
            rows = receive_stereo_batch([build(5), build(6)], iq_batch)
            for i, seed in enumerate((5, 6)):
                serial = build(seed).receive(iq_batch[i])
                assert np.array_equal(rows[i].left, serial.left), (build, i)
                assert np.array_equal(rows[i].right, serial.right), (build, i)

    def test_support_predicates(self):
        assert supports_stereo_batch(FMReceiver())
        assert not supports_stereo_batch(FMReceiver(stereo_capable=False))
        # De-emphasis no longer forces a fallback: the biquad runs as a
        # 2-D pass, so de-emphasizing receivers batch like any other.
        assert supports_stereo_batch(FMReceiver(apply_deemphasis=True))
        assert supports_mono_batch(
            FMReceiver(stereo_capable=False, apply_deemphasis=True)
        )
        assert supports_stereo_batch(CarReceiver())
        assert supports_mono_batch(FMReceiver(stereo_capable=False))
        assert not supports_mono_batch(FMReceiver())

    def test_deemphasis_batch_bit_identical(self):
        iq_batch = np.stack([broadcast_iq(1000, 3000), broadcast_iq(2000)])
        rows = receive_stereo_batch(
            [FMReceiver(apply_deemphasis=True) for _ in range(2)], iq_batch
        )
        for i in range(2):
            serial = FMReceiver(apply_deemphasis=True).receive(iq_batch[i])
            assert np.array_equal(rows[i].left, serial.left), i
            assert np.array_equal(rows[i].right, serial.right), i

    def test_mixed_deemphasis_rejected(self):
        iq_batch = np.stack([broadcast_iq(1000, 3000)] * 2)
        with pytest.raises(ConfigurationError):
            receive_stereo_batch(
                [FMReceiver(), FMReceiver(apply_deemphasis=True)], iq_batch
            )

    def test_rejects_mono_receivers(self):
        iq_batch = np.stack([broadcast_iq(1000)])
        with pytest.raises(ConfigurationError):
            receive_stereo_batch([FMReceiver(stereo_capable=False)], iq_batch)

    def test_rejects_mixed_configuration(self):
        iq_batch = np.stack([broadcast_iq(1000, 3000)] * 2)
        with pytest.raises(ConfigurationError):
            receive_stereo_batch(
                [FMReceiver(), FMReceiver(audio_cutoff_hz=5000.0)], iq_batch
            )

    def test_empty_batch(self):
        assert receive_stereo_batch([], np.empty((0, 1024), dtype=complex)) == []

"""Generic FM receiver chain tests."""

import numpy as np
import pytest

from repro.audio.tones import tone
from repro.constants import AUDIO_RATE_HZ
from repro.dsp.spectrum import tone_snr_db
from repro.fm.mpx import MpxComponents, compose_mpx
from repro.fm.modulator import fm_modulate
from repro.receiver.fm_receiver import FMReceiver


def broadcast_iq(left_hz=1000, right_hz=None, duration=0.5):
    left = tone(left_hz, duration, AUDIO_RATE_HZ, amplitude=0.8)
    right = tone(right_hz, duration, AUDIO_RATE_HZ, amplitude=0.8) if right_hz else None
    return fm_modulate(compose_mpx(MpxComponents(left=left, right=right)))


class TestReceive:
    def test_mono_reception(self):
        received = FMReceiver().receive(broadcast_iq())
        assert not received.stereo_locked
        assert tone_snr_db(received.mono, AUDIO_RATE_HZ, 1000) > 30

    def test_stereo_reception(self):
        received = FMReceiver().receive(broadcast_iq(1000, 3000))
        assert received.stereo_locked
        assert tone_snr_db(received.left, AUDIO_RATE_HZ, 1000) > 20
        assert tone_snr_db(received.right, AUDIO_RATE_HZ, 3000) > 20

    def test_stereo_incapable_receiver_stays_mono(self):
        receiver = FMReceiver(stereo_capable=False)
        received = receiver.receive(broadcast_iq(1000, 3000))
        assert not received.stereo_locked
        assert np.array_equal(received.left, received.right)

    def test_audio_cutoff_applies(self):
        from repro.dsp.spectrum import band_power

        wide = FMReceiver(audio_cutoff_hz=15_000.0).receive(broadcast_iq(9000))
        narrow = FMReceiver(audio_cutoff_hz=5000.0).receive(broadcast_iq(9000))
        p_wide = band_power(wide.mono, AUDIO_RATE_HZ, 8500, 9500)
        p_narrow = band_power(narrow.mono, AUDIO_RATE_HZ, 8500, 9500)
        assert p_narrow < 1e-4 * p_wide

    def test_mpx_exposed_for_diagnostics(self):
        received = FMReceiver().receive(broadcast_iq())
        assert received.mpx.size > 0

    def test_difference_property(self):
        received = FMReceiver().receive(broadcast_iq(1000, 3000))
        assert np.allclose(
            received.difference, 0.5 * (received.left - received.right)
        )

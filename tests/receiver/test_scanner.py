"""Band-scanner tests."""

import pytest

from repro.errors import ConfigurationError
from repro.receiver.scanner import BandScanner, ChannelObservation


def obs(pairs):
    return [ChannelObservation(channel=c, power_dbm=p) for c, p in pairs]


class TestOccupancy:
    def test_threshold_splits_channels(self):
        scanner = BandScanner(occupancy_threshold_dbm=-70.0)
        observations = obs([(10, -40.0), (11, -90.0), (12, -65.0)])
        assert scanner.occupied_channels(observations) == [10, 12]

    def test_rejects_duplicates(self):
        scanner = BandScanner()
        with pytest.raises(ConfigurationError):
            scanner.occupied_channels(obs([(5, -40.0), (5, -50.0)]))


class TestBestChannel:
    def test_prefers_quietest_free_neighbor(self):
        scanner = BandScanner(occupancy_threshold_dbm=-70.0)
        observations = obs(
            [(48, -95.0), (49, -80.0), (50, -30.0), (51, -88.0), (52, -40.0)]
        )
        # Free channels in reach: 48 (-95), 49 (-80), 51 (-88); the
        # quietest is 48 even though 49/51 are closer.
        assert scanner.best_backscatter_channel(observations, 50) == 48

    def test_skips_occupied_adjacent(self):
        scanner = BandScanner(occupancy_threshold_dbm=-70.0)
        observations = obs([(49, -40.0), (50, -30.0), (51, -50.0), (52, -92.0)])
        assert scanner.best_backscatter_channel(observations, 50) == 52

    def test_none_when_everything_occupied(self):
        scanner = BandScanner(occupancy_threshold_dbm=-70.0)
        observations = obs([(49, -40.0), (50, -30.0), (51, -50.0)])
        assert scanner.best_backscatter_channel(observations, 50, max_shift_channels=1) is None

    def test_fback_mapping(self):
        # Three channels away = 600 kHz, the paper's evaluation shift.
        assert BandScanner.fback_for_channels(50, 53) == pytest.approx(600e3)

    def test_fback_rejects_same_channel(self):
        with pytest.raises(ConfigurationError):
            BandScanner.fback_for_channels(50, 50)

"""Smartphone and car receiver model tests."""

import numpy as np
import pytest

from repro.audio.tones import tone
from repro.constants import AUDIO_RATE_HZ
from repro.dsp.spectrum import band_power, tone_snr_db
from repro.fm.mpx import MpxComponents, compose_mpx
from repro.fm.modulator import fm_modulate
from repro.receiver.car import CarReceiver
from repro.receiver.smartphone import SMARTPHONE_AUDIO_CUTOFF_HZ, SmartphoneReceiver


def broadcast_iq(freq_hz, duration=0.5):
    left = tone(freq_hz, duration, AUDIO_RATE_HZ, amplitude=0.8)
    return fm_modulate(compose_mpx(MpxComponents(left=left, right=None)))


class TestSmartphone:
    def test_passes_midband(self):
        received = SmartphoneReceiver(rng=0).receive(broadcast_iq(5000))
        assert tone_snr_db(received.mono, AUDIO_RATE_HZ, 5000) > 25

    def test_fig6_cutoff_kills_14khz(self):
        # Fig. 6: sharp drop above ~13 kHz. Compare absolute tone power in
        # the received audio below and above the cliff.
        rx = SmartphoneReceiver(agc_enabled=False, rng=0)
        good = rx.receive(broadcast_iq(11_000))
        bad = rx.receive(broadcast_iq(14_500))
        p_good = band_power(good.mono, AUDIO_RATE_HZ, 10_500, 11_500)
        p_bad = band_power(bad.mono, AUDIO_RATE_HZ, 14_000, 15_000)
        assert p_bad < 1e-3 * p_good

    def test_cutoff_constant_matches_fig6(self):
        assert SMARTPHONE_AUDIO_CUTOFF_HZ == 13_000.0

    def test_agc_normalizes_level(self):
        rx = SmartphoneReceiver(agc_enabled=True, rng=0)
        received = rx.receive(broadcast_iq(5000))
        assert np.sqrt(np.mean(received.mono**2)) == pytest.approx(0.25, rel=0.4)

    def test_codec_noise_floor_present(self):
        rx = SmartphoneReceiver(agc_enabled=False, codec_noise_db=-40.0, rng=1)
        received = rx.receive(broadcast_iq(5000))
        # Noise must be visible in an empty band.
        assert band_power(received.mono, AUDIO_RATE_HZ, 9000, 10_000) > 1e-7


class TestCar:
    def test_receives_tone_through_cabin(self):
        received = CarReceiver(rng=0).receive(broadcast_iq(1000))
        assert tone_snr_db(received.mono, AUDIO_RATE_HZ, 1000) > 15

    def test_cabin_noise_limits_snr(self):
        quiet = CarReceiver(cabin_noise_snr_db=50.0, rng=1).receive(broadcast_iq(1000))
        loud = CarReceiver(cabin_noise_snr_db=10.0, rng=1).receive(broadcast_iq(1000))
        assert tone_snr_db(quiet.mono, AUDIO_RATE_HZ, 1000) > tone_snr_db(
            loud.mono, AUDIO_RATE_HZ, 1000
        )

    def test_acoustic_path_blocks_subsonic(self):
        # The speaker/microphone chain passes no DC/subsonic content.
        received = CarReceiver(rng=2).receive(broadcast_iq(1000))
        assert abs(np.mean(received.mono)) < 0.01

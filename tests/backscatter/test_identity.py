"""The paper's core claim: square-wave backscatter mixing == audio addition.

These tests exercise the *physical* path — a +/-1 switch waveform
multiplying the ambient envelope at a wideband rate — and verify that the
channel at ``fc + fback`` contains an FM signal whose audio is
``FMaudio + FMback`` (section 3.3), matching the fast composite-MPX path
used by the experiment harness.
"""

import numpy as np
import pytest

from repro.backscatter.modulator import composite_mpx, subcarrier_envelope
from repro.backscatter.switch import SquareWaveSwitch, switch_waveform
from repro.dsp.resample import resample_by_ratio
from repro.dsp.spectrum import tone_snr_db
from repro.errors import ConfigurationError
from repro.fm.demodulator import fm_demodulate
from repro.fm.modulator import fm_modulate

FS_WIDE = 4_800_000.0
FS_CHAN = 480_000.0
FBACK = 600e3


def run_physical(amb_tone_hz=1000.0, back_tone_hz=5000.0, duration=0.05):
    n = int(duration * FS_WIDE)
    t = np.arange(n) / FS_WIDE
    amb_mpx = 0.9 * np.cos(2 * np.pi * amb_tone_hz * t)
    back_mpx = 0.8 * np.cos(2 * np.pi * back_tone_hz * t)
    amb_iq = fm_modulate(amb_mpx, FS_WIDE)
    switch = SquareWaveSwitch(fback_hz=FBACK, sample_rate=FS_WIDE)
    reflected = switch.reflect(amb_iq, back_mpx)
    chan = switch.downconvert(reflected, output_rate=FS_CHAN)
    mpx_rx = fm_demodulate(chan, FS_CHAN)
    return resample_by_ratio(mpx_rx, FS_CHAN, 48_000.0)


class TestMultiplicationBecomesAddition:
    def test_both_audio_components_present(self):
        audio = run_physical()
        # Both the ambient 1 kHz and the backscattered 5 kHz appear.
        assert tone_snr_db(audio, 48_000.0, 1000) > -4
        assert tone_snr_db(audio, 48_000.0, 5000) > -4

    def test_matches_identity_path(self):
        audio_physical = run_physical()
        n = int(0.05 * FS_CHAN)
        t = np.arange(n) / FS_CHAN
        comp = composite_mpx(
            0.9 * np.cos(2 * np.pi * 1000 * t), 0.8 * np.cos(2 * np.pi * 5000 * t)
        )
        audio_identity = resample_by_ratio(
            fm_demodulate(fm_modulate(comp, FS_CHAN), FS_CHAN), FS_CHAN, 48_000.0
        )
        m = min(audio_physical.size, audio_identity.size)
        trim = slice(200, m - 200)
        corr = np.corrcoef(audio_physical[trim], audio_identity[trim])[0, 1]
        assert corr > 0.99


class TestSwitchWaveform:
    def test_binary_valued(self):
        n = 10_000
        t = np.arange(n) / FS_WIDE
        wave = switch_waveform(0.5 * np.cos(2 * np.pi * 100 * t), FBACK, FS_WIDE)
        assert set(np.unique(wave)) <= {-1.0, 1.0}

    # An exact DFT bin whose period is a NON-integer number of samples:
    # with an integer samples-per-cycle ratio (e.g. exactly 8 at 600 kHz /
    # 4.8 MHz) the sampled sign() quantizes the duty cycle and biases the
    # fundamental, which is a sampling artifact, not switch behaviour.
    _N = 2**16
    _K = 7747
    _F_BIN = FS_WIDE * _K / _N

    def test_fundamental_power_is_4_over_pi_squared(self):
        # The square wave's fundamental amplitude is 4/pi.
        wave = switch_waveform(np.zeros(self._N), self._F_BIN, FS_WIDE)
        spectrum = np.fft.rfft(wave) / self._N
        fundamental_amp = 2 * np.abs(spectrum[self._K])
        assert fundamental_amp == pytest.approx(4 / np.pi, rel=0.01)

    def test_third_harmonic_at_one_third_amplitude(self):
        wave = switch_waveform(np.zeros(self._N), self._F_BIN, FS_WIDE)
        spectrum = np.abs(np.fft.rfft(wave)) / self._N
        fund = spectrum[self._K]
        third = spectrum[3 * self._K]
        assert third == pytest.approx(fund / 3, rel=0.02)


class TestSubcarrierEnvelope:
    def test_amplitude_is_2_over_pi(self):
        n = 1000
        env = subcarrier_envelope(np.zeros(n), FBACK, FS_WIDE)
        assert np.allclose(np.abs(env), 2 / np.pi)

    def test_rejects_fback_above_nyquist(self):
        with pytest.raises(ConfigurationError):
            subcarrier_envelope(np.zeros(10), 300e3, 480e3)


class TestCompositeMpx:
    def test_plain_addition_at_equal_deviation(self):
        a = np.array([0.1, 0.2])
        b = np.array([0.3, -0.1])
        assert np.allclose(composite_mpx(a, b), a + b)

    def test_deviation_bookkeeping(self):
        a = np.array([1.0])
        b = np.array([1.0])
        out = composite_mpx(a, b, ambient_deviation_hz=75e3, back_deviation_hz=37.5e3)
        assert out[0] == pytest.approx(1.5)

    def test_truncates_to_shorter(self):
        out = composite_mpx(np.zeros(10), np.zeros(7))
        assert out.size == 7


class TestSwitchConfig:
    def test_rejects_undersampled_rate(self):
        with pytest.raises(ConfigurationError):
            SquareWaveSwitch(fback_hz=600e3, sample_rate=1_000_000.0)

    def test_downconvert_rejects_non_integer_ratio(self):
        switch = SquareWaveSwitch(fback_hz=600e3, sample_rate=FS_WIDE)
        reflected = np.ones(1000, dtype=complex)
        with pytest.raises(ConfigurationError):
            switch.downconvert(reflected, output_rate=70_000.0)

"""Capacitor-bank DCO quantization tests (paper section 4 hardware)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backscatter.dco import CapacitorBankDco
from repro.errors import ConfigurationError


class TestBank:
    def test_paper_bank_has_256_levels(self):
        assert CapacitorBankDco(n_bits=8).n_levels == 256

    def test_step_size(self):
        dco = CapacitorBankDco(n_bits=8, deviation_hz=75e3)
        assert dco.frequency_step_hz == pytest.approx(2 * 75e3 / 255)

    def test_rejects_silly_bits(self):
        with pytest.raises(ConfigurationError):
            CapacitorBankDco(n_bits=0)


class TestQuantization:
    def test_endpoints_exact(self):
        dco = CapacitorBankDco(n_bits=4)
        q = dco.quantize_baseband(np.array([-1.0, 1.0]))
        assert np.allclose(q, [-1.0, 1.0])

    def test_out_of_range_clips(self):
        dco = CapacitorBankDco(n_bits=8)
        q = dco.quantize_baseband(np.array([-2.0, 2.0]))
        assert np.allclose(q, [-1.0, 1.0])

    def test_idempotent(self):
        dco = CapacitorBankDco(n_bits=6)
        x = np.linspace(-1, 1, 101)
        once = dco.quantize_baseband(x)
        assert np.allclose(dco.quantize_baseband(once), once)

    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_error_bounded_by_half_step(self, n_bits):
        dco = CapacitorBankDco(n_bits=n_bits)
        rng = np.random.default_rng(n_bits)
        x = rng.uniform(-1, 1, size=500)
        q = dco.quantize_baseband(x)
        half_step = 1.0 / (dco.n_levels - 1)
        assert np.max(np.abs(q - x)) <= half_step + 1e-12

    def test_more_bits_better_snr(self):
        t = np.linspace(0, 1, 48_000)
        x = 0.8 * np.sin(2 * np.pi * 5 * t)
        snr4 = CapacitorBankDco(n_bits=4).quantization_snr_db(x)
        snr8 = CapacitorBankDco(n_bits=8).quantization_snr_db(x)
        # ~6 dB per bit: 4 extra bits buys roughly 24 dB.
        assert snr8 - snr4 > 18

    def test_paper_bank_snr_is_high(self):
        # 8 bits leave quantization noise far below program audio.
        t = np.linspace(0, 1, 48_000)
        x = 0.8 * np.sin(2 * np.pi * 5 * t)
        assert CapacitorBankDco(n_bits=8).quantization_snr_db(x) > 40

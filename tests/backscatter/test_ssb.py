"""Single-sideband backscatter tests (paper footnote 2 extension)."""

import numpy as np
import pytest

from repro.backscatter.ssb import sideband_rejection_db, ssb_switch_envelope
from repro.backscatter.switch import switch_waveform
from repro.errors import ConfigurationError

FS = 4_800_000.0
FBACK = 600e3


class TestSsb:
    def test_square_wave_has_equal_sidebands(self):
        n = 2**16
        wave = switch_waveform(np.zeros(n), FBACK, FS)
        rejection = sideband_rejection_db(wave, FBACK, FS)
        assert abs(rejection) < 1.0

    def test_ssb_rejects_mirror(self):
        n = 2**16
        env = ssb_switch_envelope(np.zeros(n), FBACK, FS, n_levels=8)
        assert sideband_rejection_db(env, FBACK, FS) > 20.0

    def test_more_levels_reject_harder(self):
        n = 2**16
        r4 = sideband_rejection_db(
            ssb_switch_envelope(np.zeros(n), FBACK, FS, n_levels=4), FBACK, FS
        )
        r16 = sideband_rejection_db(
            ssb_switch_envelope(np.zeros(n), FBACK, FS, n_levels=16), FBACK, FS
        )
        assert r16 > r4

    def test_unit_magnitude(self):
        env = ssb_switch_envelope(np.zeros(1000), FBACK, FS)
        assert np.allclose(np.abs(env), 1.0)

    def test_rejects_single_level(self):
        with pytest.raises(ConfigurationError):
            ssb_switch_envelope(np.zeros(10), FBACK, FS, n_levels=1)

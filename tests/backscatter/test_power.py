"""IC power budget and battery-life tests (paper sections 2 and 4)."""

import pytest

from repro.backscatter.power import (
    COIN_CELL_CAPACITY_MAH,
    PowerBudget,
    battery_life_hours,
    duty_cycled_power_w,
    fm_chip_power_w,
    ic_power_budget,
)
from repro.errors import ConfigurationError


class TestIcBudget:
    def test_total_is_11_07_uw(self):
        assert ic_power_budget().total_uw == pytest.approx(11.07, abs=0.01)

    def test_components_match_paper(self):
        budget = ic_power_budget()
        assert budget.baseband_w == pytest.approx(1.0e-6)
        assert budget.modulator_w == pytest.approx(9.94e-6)
        assert budget.switch_w == pytest.approx(0.13e-6)

    def test_rejects_negative_component(self):
        with pytest.raises(ConfigurationError):
            PowerBudget(baseband_w=-1.0)


class TestBatteryLife:
    def test_fm_chip_dies_within_12_hours(self):
        hours = battery_life_hours(fm_chip_power_w())
        assert hours < 12.5

    def test_backscatter_runs_for_years(self):
        hours = battery_life_hours(ic_power_budget().total_w)
        years = hours / (24 * 365)
        # Paper section 2: "could continuously transmit for almost 3 years"
        assert 2.0 < years < 10.0

    def test_backscatter_vs_fm_chip_ratio(self):
        ratio = battery_life_hours(ic_power_budget().total_w) / battery_life_hours(
            fm_chip_power_w()
        )
        # 18.8 mA * 3 V vs 11.07 uW: over three orders of magnitude.
        assert ratio > 1000

    def test_rejects_zero_load(self):
        with pytest.raises(ConfigurationError):
            battery_life_hours(0.0)


class TestDutyCycling:
    def test_idle_device_draws_sleep_power(self):
        assert duty_cycled_power_w(11e-6, 0.0, sleep_power_w=50e-9) == pytest.approx(50e-9)

    def test_always_on_draws_active_power(self):
        assert duty_cycled_power_w(11e-6, 1.0) == pytest.approx(11e-6)

    def test_motion_triggered_poster_extends_life(self):
        # Section 8: transmit only when someone approaches (say 5% duty).
        always = battery_life_hours(duty_cycled_power_w(11.07e-6, 1.0))
        sometimes = battery_life_hours(duty_cycled_power_w(11.07e-6, 0.05))
        assert sometimes > 10 * always

    def test_rejects_bad_duty_cycle(self):
        with pytest.raises(ConfigurationError):
            duty_cycled_power_w(1e-6, 1.5)

"""Backscatter device mode tests."""

import numpy as np
import pytest

from repro.audio.tones import tone
from repro.backscatter.device import BackscatterDevice, BackscatterMode
from repro.constants import AUDIO_RATE_HZ, MPX_RATE_HZ
from repro.dsp.spectrum import band_power
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def payload():
    return tone(3000, 0.25, AUDIO_RATE_HZ, amplitude=0.9)


class TestOverlay:
    def test_payload_in_mono_band(self, payload):
        device = BackscatterDevice(mode=BackscatterMode.OVERLAY)
        baseband = device.baseband(payload)
        assert band_power(baseband, MPX_RATE_HZ, 2500, 3500) > 0.1
        assert band_power(baseband, MPX_RATE_HZ, 30_000, 50_000) < 1e-6

    def test_no_pilot(self, payload):
        device = BackscatterDevice(mode=BackscatterMode.OVERLAY)
        baseband = device.baseband(payload)
        assert band_power(baseband, MPX_RATE_HZ, 18_500, 19_500) < 1e-7
        assert not device.injects_pilot()


class TestStereo:
    def test_payload_moves_to_stereo_band(self, payload):
        device = BackscatterDevice(mode=BackscatterMode.STEREO)
        baseband = device.baseband(payload)
        # 3 kHz tone DSB-SC on 38 kHz -> sidebands at 35/41 kHz.
        assert band_power(baseband, MPX_RATE_HZ, 34_000, 42_000) > 0.05
        assert band_power(baseband, MPX_RATE_HZ, 2500, 3500) < 1e-6

    def test_no_pilot_duplicate(self, payload):
        device = BackscatterDevice(mode=BackscatterMode.STEREO)
        baseband = device.baseband(payload)
        assert band_power(baseband, MPX_RATE_HZ, 18_500, 19_500) < 1e-7


class TestMonoToStereo:
    def test_injects_pilot(self, payload):
        device = BackscatterDevice(mode=BackscatterMode.MONO_TO_STEREO)
        baseband = device.baseband(payload)
        assert band_power(baseband, MPX_RATE_HZ, 18_500, 19_500) > 1e-4
        assert device.injects_pilot()

    def test_payload_fraction_split(self, payload):
        # 0.9/0.1 deviation split per the paper's section 3.3.1 equation.
        device = BackscatterDevice(mode=BackscatterMode.MONO_TO_STEREO)
        baseband = device.baseband(payload)
        pilot = band_power(baseband, MPX_RATE_HZ, 18_500, 19_500)
        stereo = band_power(baseband, MPX_RATE_HZ, 34_000, 42_000)
        # Pilot is a single tone at 0.1 amplitude (power ~0.005); the
        # payload spreads 0.9 over two sidebands.
        assert stereo > pilot

    def test_output_bounded(self, payload):
        device = BackscatterDevice(mode=BackscatterMode.MONO_TO_STEREO)
        assert np.max(np.abs(device.baseband(payload))) <= 1.0 + 1e-9


class TestValidation:
    def test_rejects_bad_mode(self):
        with pytest.raises(ConfigurationError):
            BackscatterDevice(mode="overlay")

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            BackscatterDevice(payload_fraction=0.0)

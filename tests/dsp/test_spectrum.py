"""Spectral estimation tests."""

import numpy as np
import pytest

from repro.dsp.spectrum import band_power, power_spectrum, tone_snr_db
from repro.errors import ConfigurationError

FS = 48_000.0


class TestPowerSpectrum:
    def test_peak_at_tone(self):
        x = np.cos(2 * np.pi * 5000 * np.arange(48_000) / FS)
        freqs, psd = power_spectrum(x, FS)
        assert abs(freqs[np.argmax(psd)] - 5000) < 50

    def test_short_signal_clips_nperseg(self):
        freqs, psd = power_spectrum(np.ones(100), FS, nperseg=4096)
        assert freqs.size > 0


class TestBandPower:
    def test_total_power_of_tone(self):
        # A unit cosine carries power 1/2.
        x = np.cos(2 * np.pi * 5000 * np.arange(96_000) / FS)
        assert band_power(x, FS, 4000, 6000) == pytest.approx(0.5, rel=0.05)

    def test_out_of_band_is_small(self):
        x = np.cos(2 * np.pi * 5000 * np.arange(96_000) / FS)
        assert band_power(x, FS, 10_000, 12_000) < 1e-6

    def test_rejects_inverted_band(self):
        with pytest.raises(ConfigurationError):
            band_power(np.ones(100), FS, 6000, 4000)


class TestToneSnr:
    def test_clean_tone_high_snr(self):
        x = np.cos(2 * np.pi * 5000 * np.arange(96_000) / FS)
        assert tone_snr_db(x, FS, 5000) > 30

    def test_snr_decreases_with_noise(self):
        rng = np.random.default_rng(0)
        t = np.arange(96_000) / FS
        x = np.cos(2 * np.pi * 5000 * t)
        clean = tone_snr_db(x, FS, 5000)
        noisy = tone_snr_db(x + 0.5 * rng.standard_normal(x.size), FS, 5000)
        assert noisy < clean - 10

    def test_absent_tone_negative_snr(self):
        rng = np.random.default_rng(1)
        assert tone_snr_db(rng.standard_normal(96_000), FS, 5000) < 3

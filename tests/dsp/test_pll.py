"""PLL tests: lock, tracking, harmonics."""

import numpy as np
import pytest

from repro.dsp.pll import PhaseLockedLoop
from repro.errors import ConfigurationError

FS = 96_000.0


class TestLock:
    def test_locks_to_exact_tone(self):
        t = np.arange(int(0.5 * FS)) / FS
        x = 0.1 * np.cos(2 * np.pi * 19_000 * t)
        result = PhaseLockedLoop(19_000, FS).track(x)
        assert result.locked

    def test_locks_with_frequency_offset(self):
        t = np.arange(int(1.0 * FS)) / FS
        x = np.cos(2 * np.pi * 19_010 * t)
        result = PhaseLockedLoop(19_000, FS, loop_bandwidth_hz=60.0).track(x)
        assert abs(np.mean(result.frequency_hz[-1000:]) - 19_010) < 5

    def test_amplitude_estimate(self):
        t = np.arange(int(0.5 * FS)) / FS
        x = 0.25 * np.cos(2 * np.pi * 19_000 * t)
        result = PhaseLockedLoop(19_000, FS).track(x)
        assert result.amplitude == pytest.approx(0.25, rel=0.1)

    def test_does_not_lock_to_silence(self):
        result = PhaseLockedLoop(19_000, FS).track(1e-9 * np.ones(int(0.2 * FS)))
        # With no tone present the loop free-runs near center; either way
        # the amplitude estimate must be essentially zero.
        assert abs(result.amplitude) < 1e-3


class TestReference:
    def test_reference_tracks_input_phase(self):
        t = np.arange(int(0.5 * FS)) / FS
        x = np.cos(2 * np.pi * 19_000 * t + 0.7)
        result = PhaseLockedLoop(19_000, FS).track(x)
        ref = result.reference()
        tail = slice(-2000, None)
        corr = np.mean(x[tail] * ref[tail]) * 2
        assert corr == pytest.approx(1.0, abs=0.1)

    def test_harmonic_doubles_frequency(self):
        t = np.arange(int(0.5 * FS)) / FS
        x = np.cos(2 * np.pi * 19_000 * t)
        result = PhaseLockedLoop(19_000, FS).track(x)
        ref38 = result.reference_harmonic(2)
        target = np.cos(2 * np.pi * 38_000 * t)
        tail = slice(-2000, None)
        assert np.mean(ref38[tail] * target[tail]) * 2 == pytest.approx(1.0, abs=0.15)

    def test_rejects_bad_harmonic(self):
        t = np.arange(1000) / FS
        result = PhaseLockedLoop(19_000, FS).track(np.cos(2 * np.pi * 19_000 * t))
        with pytest.raises(ConfigurationError):
            result.reference_harmonic(0)


class TestConfig:
    def test_rejects_center_above_nyquist(self):
        with pytest.raises(ConfigurationError):
            PhaseLockedLoop(60_000, FS)

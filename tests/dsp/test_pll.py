"""PLL tests: lock, tracking, harmonics, and the multi-waveform batch."""

import numpy as np
import pytest

from repro.dsp.pll import MIN_VECTOR_WAVEFORMS, PhaseLockedLoop, PLLBatchResult
from repro.errors import ConfigurationError, SignalError
from repro.fm.pilot import PILOT_DETECT_THRESHOLD_DB

FS = 96_000.0


class TestLock:
    def test_locks_to_exact_tone(self):
        t = np.arange(int(0.5 * FS)) / FS
        x = 0.1 * np.cos(2 * np.pi * 19_000 * t)
        result = PhaseLockedLoop(19_000, FS).track(x)
        assert result.locked

    def test_locks_with_frequency_offset(self):
        t = np.arange(int(1.0 * FS)) / FS
        x = np.cos(2 * np.pi * 19_010 * t)
        result = PhaseLockedLoop(19_000, FS, loop_bandwidth_hz=60.0).track(x)
        assert abs(np.mean(result.frequency_hz[-1000:]) - 19_010) < 5

    def test_amplitude_estimate(self):
        t = np.arange(int(0.5 * FS)) / FS
        x = 0.25 * np.cos(2 * np.pi * 19_000 * t)
        result = PhaseLockedLoop(19_000, FS).track(x)
        assert result.amplitude == pytest.approx(0.25, rel=0.1)

    def test_does_not_lock_to_silence(self):
        result = PhaseLockedLoop(19_000, FS).track(1e-9 * np.ones(int(0.2 * FS)))
        # With no tone present the loop free-runs near center; either way
        # the amplitude estimate must be essentially zero.
        assert abs(result.amplitude) < 1e-3


class TestReference:
    def test_reference_tracks_input_phase(self):
        t = np.arange(int(0.5 * FS)) / FS
        x = np.cos(2 * np.pi * 19_000 * t + 0.7)
        result = PhaseLockedLoop(19_000, FS).track(x)
        ref = result.reference()
        tail = slice(-2000, None)
        corr = np.mean(x[tail] * ref[tail]) * 2
        assert corr == pytest.approx(1.0, abs=0.1)

    def test_harmonic_doubles_frequency(self):
        t = np.arange(int(0.5 * FS)) / FS
        x = np.cos(2 * np.pi * 19_000 * t)
        result = PhaseLockedLoop(19_000, FS).track(x)
        ref38 = result.reference_harmonic(2)
        target = np.cos(2 * np.pi * 38_000 * t)
        tail = slice(-2000, None)
        assert np.mean(ref38[tail] * target[tail]) * 2 == pytest.approx(1.0, abs=0.15)

    def test_rejects_bad_harmonic(self):
        t = np.arange(1000) / FS
        result = PhaseLockedLoop(19_000, FS).track(np.cos(2 * np.pi * 19_000 * t))
        with pytest.raises(ConfigurationError):
            result.reference_harmonic(0)


class TestConfig:
    def test_rejects_center_above_nyquist(self):
        with pytest.raises(ConfigurationError):
            PhaseLockedLoop(60_000, FS)


class TestTrackBatch:
    """track_batch advances independent per-waveform state vectors, so
    every row must be bit-identical to tracking that waveform alone —
    the invariant the batched sweep backend's stereo decode rests on."""

    @staticmethod
    def _assert_rows_match_track(pll, stack):
        batch = pll.track_batch(stack)
        for i in range(stack.shape[0]):
            single = pll.track(stack[i])
            assert np.array_equal(batch.phase[i], single.phase), i
            assert np.array_equal(batch.frequency_hz[i], single.frequency_hz), i
            assert bool(batch.locked[i]) == single.locked, i
            assert float(batch.amplitude[i]) == single.amplitude, i

    def test_random_stack_rows_bit_identical_to_track(self, rng):
        # Wide enough to take the vector loop (not the narrow-stack
        # delegation), with amplitudes and offsets scattered per row.
        t = np.arange(int(0.25 * FS)) / FS
        stack = np.stack(
            [
                rng.uniform(0.05, 1.0)
                * np.cos(2 * np.pi * (19_000 + offset) * t + rng.uniform(0, 2 * np.pi))
                + 0.02 * rng.standard_normal(t.size)
                for offset in (0.0, 4.0, -3.0, 8.0, -7.0, 2.0, 5.5, -1.0)
            ]
        )
        assert stack.shape[0] >= MIN_VECTOR_WAVEFORMS
        self._assert_rows_match_track(PhaseLockedLoop(19_000, FS), stack)

    def test_single_waveform_batch_matches_track(self):
        t = np.arange(int(0.2 * FS)) / FS
        stack = 0.1 * np.cos(2 * np.pi * 19_000 * t)[np.newaxis, :]
        self._assert_rows_match_track(PhaseLockedLoop(19_000, FS), stack)

    def test_mixed_lock_outcomes_in_one_batch(self):
        # Strong pilots, silent rows and far-off-frequency rows must
        # keep their individual lock decisions inside one vector-loop
        # batch.
        t = np.arange(int(0.3 * FS)) / FS
        stack = np.stack(
            [
                0.1 * np.cos(2 * np.pi * 19_000 * t),
                1e-9 * np.ones(t.size),
                0.1 * np.cos(2 * np.pi * 26_000 * t),
                0.5 * np.cos(2 * np.pi * 19_000 * t + 1.3),
                np.zeros(t.size),
                0.25 * np.cos(2 * np.pi * 19_004 * t),
            ]
        )
        assert stack.shape[0] >= MIN_VECTOR_WAVEFORMS
        batch = PhaseLockedLoop(19_000, FS).track_batch(stack)
        assert bool(batch.locked[0])
        assert not bool(batch.locked[2])
        assert bool(batch.locked[3])
        self._assert_rows_match_track(PhaseLockedLoop(19_000, FS), stack)

    def test_pilot_powers_around_detect_threshold(self, rng):
        # Pilot amplitudes straddling the stereo detect threshold (a
        # fixed guard-band noise floor, pilots from ~8 dB below to ~8 dB
        # above it) — the regime the Fig. 13 power axis sweeps through.
        t = np.arange(int(0.3 * FS)) / FS
        noise = 0.02 * rng.standard_normal(t.size)
        ratios_db = np.array([-8.0, -4.0, -2.0, 0.0, 2.0, 4.0, 8.0]) + PILOT_DETECT_THRESHOLD_DB
        amplitudes = 0.002 * 10.0 ** (ratios_db / 20.0)
        stack = np.stack(
            [a * np.cos(2 * np.pi * 19_000 * t) + noise for a in amplitudes]
        )
        assert stack.shape[0] >= MIN_VECTOR_WAVEFORMS
        self._assert_rows_match_track(PhaseLockedLoop(19_000, FS), stack)

    def test_narrow_stack_delegation_matches_track(self, rng):
        # Below MIN_VECTOR_WAVEFORMS the batch delegates to per-row
        # scalar loops; results must be indistinguishable.
        t = np.arange(int(0.2 * FS)) / FS
        stack = np.stack(
            [
                0.1 * np.cos(2 * np.pi * 19_000 * t) + 0.01 * rng.standard_normal(t.size)
                for _ in range(MIN_VECTOR_WAVEFORMS - 1)
            ]
        )
        self._assert_rows_match_track(PhaseLockedLoop(19_000, FS), stack)

    def test_empty_batch_returns_empty_results(self):
        batch = PhaseLockedLoop(19_000, FS).track_batch(np.empty((0, 128)))
        assert batch.phase.shape == (0, 128)
        assert batch.frequency_hz.shape == (0, 128)
        assert batch.locked.shape == (0,)
        assert batch.amplitude.shape == (0,)

    def test_rejects_zero_length_waveforms_like_track(self):
        pll = PhaseLockedLoop(19_000, FS)
        with pytest.raises(SignalError):
            pll.track(np.empty(0))
        with pytest.raises(SignalError):
            pll.track_batch(np.empty((3, 0)))

    def test_rejects_non_2d_and_complex_input(self):
        pll = PhaseLockedLoop(19_000, FS)
        with pytest.raises(SignalError):
            pll.track_batch(np.zeros(64))
        with pytest.raises(SignalError):
            pll.track_batch(np.zeros((2, 64), dtype=complex))

    def test_row_view_and_harmonics(self):
        t = np.arange(int(0.2 * FS)) / FS
        stack = np.stack([0.1 * np.cos(2 * np.pi * 19_000 * t)] * 2)
        batch = PhaseLockedLoop(19_000, FS).track_batch(stack)
        assert isinstance(batch, PLLBatchResult)
        row = batch.row(1)
        assert np.array_equal(row.phase, batch.phase[1])
        assert np.array_equal(batch.reference(), np.cos(batch.phase))
        assert np.array_equal(batch.reference_harmonic(2), np.cos(2 * batch.phase))
        with pytest.raises(ConfigurationError):
            batch.reference_harmonic(0)

"""Resampling tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.resample import resample_by_ratio, resample_poly_exact
from repro.errors import ConfigurationError


class TestResamplePolyExact:
    def test_identity_when_equal(self):
        x = np.arange(10.0)
        assert np.array_equal(resample_poly_exact(x, 3, 3), x)

    def test_upsample_length(self):
        x = np.zeros(100)
        assert resample_poly_exact(x, 10, 1).size == 1000

    def test_downsample_length(self):
        x = np.zeros(1000)
        assert resample_poly_exact(x, 1, 10).size == 100

    def test_tone_preserved_through_round_trip(self):
        fs = 48_000
        t = np.arange(4800) / fs
        x = np.cos(2 * np.pi * 1000 * t)
        y = resample_poly_exact(resample_poly_exact(x, 10, 1), 1, 10)
        mid = slice(500, 4300)
        assert np.corrcoef(x[mid], y[mid])[0, 1] > 0.999

    def test_rejects_bad_factors(self):
        with pytest.raises(ConfigurationError):
            resample_poly_exact(np.zeros(10), 0, 1)
        with pytest.raises(ConfigurationError):
            resample_poly_exact(np.zeros(10), 1.5, 1)

    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=1, max_value=12))
    @settings(max_examples=25, deadline=None)
    def test_output_length_property(self, up, down):
        x = np.zeros(240)
        out = resample_poly_exact(x, up, down)
        assert out.size == int(np.ceil(240 * up / down))


class TestResampleByRatio:
    def test_audio_to_mpx_rates(self):
        x = np.zeros(480)
        assert resample_by_ratio(x, 48_000, 480_000).size == 4800

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ConfigurationError):
            resample_by_ratio(np.zeros(10), 0, 48_000)

"""Analytic-signal helper tests."""

import numpy as np
import pytest

from repro.dsp.hilbert import analytic_signal, envelope, hilbert_transform

FS = 48_000.0


class TestAnalyticSignal:
    def test_cosine_becomes_exponential(self):
        t = np.arange(4800) / FS
        x = np.cos(2 * np.pi * 1000 * t)
        z = analytic_signal(x)
        mid = slice(500, 4300)
        assert np.allclose(np.abs(z[mid]), 1.0, atol=0.01)

    def test_hilbert_of_cos_is_sin(self):
        t = np.arange(4800) / FS
        x = np.cos(2 * np.pi * 1000 * t)
        h = hilbert_transform(x)
        expected = np.sin(2 * np.pi * 1000 * t)
        mid = slice(500, 4300)
        assert np.allclose(h[mid], expected[mid], atol=0.02)

    def test_envelope_of_am(self):
        t = np.arange(9600) / FS
        am = (1 + 0.5 * np.cos(2 * np.pi * 100 * t)) * np.cos(2 * np.pi * 5000 * t)
        env = envelope(am)
        expected = 1 + 0.5 * np.cos(2 * np.pi * 100 * t)
        mid = slice(1000, 8600)
        assert np.allclose(env[mid], expected[mid], atol=0.05)

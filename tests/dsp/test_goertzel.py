"""Goertzel tone-power tests, including an FFT cross-check property."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.goertzel import goertzel_power, goertzel_power_many
from repro.errors import ConfigurationError

FS = 48_000.0


class TestGoertzelPower:
    def test_detects_tone(self):
        n = 4800
        x = np.cos(2 * np.pi * 1000 * np.arange(n) / FS)
        on = goertzel_power(x, 1000, FS)
        off = goertzel_power(x, 3000, FS)
        assert on > 1000 * max(off, 1e-12)

    def test_amplitude_relation(self):
        # For amplitude A and integer cycles: power = A^2 * n / 4.
        n = 4800
        a = 0.5
        x = a * np.cos(2 * np.pi * 1000 * np.arange(n) / FS)
        assert goertzel_power(x, 1000, FS) == pytest.approx(a**2 * n / 4, rel=1e-6)

    def test_rejects_freq_above_nyquist(self):
        with pytest.raises(ConfigurationError):
            goertzel_power(np.zeros(10), 30_000, FS)

    @given(st.integers(min_value=1, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_matches_fft_bin(self, k):
        # On exact DFT bins Goertzel equals the FFT magnitude squared / n.
        n = 480
        rng = np.random.default_rng(k)
        x = rng.standard_normal(n)
        freq = k * FS / n
        expected = np.abs(np.fft.rfft(x)[k]) ** 2 / n
        assert goertzel_power(x, freq, FS) == pytest.approx(expected, rel=1e-9)


class TestGoertzelMany:
    def test_matches_single(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(960)
        freqs = [800.0, 1600.0, 2400.0]
        many = goertzel_power_many(x, freqs, FS)
        singles = [goertzel_power(x, f, FS) for f in freqs]
        assert np.allclose(many, singles)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            goertzel_power_many(np.zeros(10), [], FS)

    def test_fsk_discrimination(self):
        # The paper's 8/12 kHz pair must be clearly separable in a 10 ms
        # symbol (the 100 bps design).
        n = 480
        x = np.cos(2 * np.pi * 8000 * np.arange(n) / FS)
        powers = goertzel_power_many(x, (8000.0, 12000.0), FS)
        assert powers[0] > 100 * powers[1]

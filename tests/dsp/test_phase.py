"""Phase integration tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.phase import frequency_to_phase, phase_to_frequency

FS = 480_000.0


class TestFrequencyToPhase:
    def test_constant_frequency_linear_phase(self):
        freq = np.full(1000, 1000.0)
        phase = frequency_to_phase(freq, FS)
        steps = np.diff(phase)
        assert np.allclose(steps, 2 * np.pi * 1000 / FS)

    def test_zero_frequency_constant_phase(self):
        phase = frequency_to_phase(np.zeros(100), FS)
        assert np.allclose(np.diff(phase), 0.0)


class TestRoundTrip:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_constant_round_trip(self, f):
        freq = np.full(500, float(f))
        recovered = phase_to_frequency(frequency_to_phase(freq, FS), FS)
        assert np.allclose(recovered, f, atol=1e-6)

    def test_varying_round_trip(self):
        rng = np.random.default_rng(0)
        freq = 1000 + 100 * rng.standard_normal(2000)
        recovered = phase_to_frequency(frequency_to_phase(freq, FS), FS)
        # First sample is extrapolated; rest must match.
        assert np.allclose(recovered[1:], freq[1:], atol=1e-6)

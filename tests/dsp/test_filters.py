"""FIR design and filtering tests."""

import numpy as np
import pytest

from repro.dsp.filters import (
    bandpass_fir,
    design_lowpass_fir,
    filter_signal,
    highpass_fir,
)
from repro.errors import ConfigurationError

FS = 48_000.0


def tone(freq, n=4800, fs=FS):
    return np.cos(2 * np.pi * freq * np.arange(n) / fs)


def gain_at(taps, freq, fs=FS):
    x = tone(freq)
    y = filter_signal(taps, x)
    # Steady-state gain: compare RMS in the middle of the block.
    mid = slice(len(x) // 4, 3 * len(x) // 4)
    return np.sqrt(np.mean(y[mid] ** 2)) / np.sqrt(np.mean(x[mid] ** 2))


class TestLowpassDesign:
    def test_unity_dc_gain(self):
        taps = design_lowpass_fir(5000, FS)
        assert np.sum(taps) == pytest.approx(1.0)

    def test_passband_flat(self):
        taps = design_lowpass_fir(5000, FS, 257)
        assert gain_at(taps, 1000) == pytest.approx(1.0, abs=0.02)

    def test_stopband_attenuates(self):
        taps = design_lowpass_fir(5000, FS, 257)
        assert gain_at(taps, 15000) < 0.01

    def test_rejects_cutoff_above_nyquist(self):
        with pytest.raises(ConfigurationError):
            design_lowpass_fir(30_000, FS)

    def test_rejects_even_taps(self):
        with pytest.raises(ConfigurationError):
            design_lowpass_fir(5000, FS, 256)


class TestHighpass:
    def test_blocks_dc(self):
        taps = highpass_fir(5000, FS, 257)
        y = filter_signal(taps, np.ones(4800))
        assert np.max(np.abs(y[1000:3000])) < 0.01

    def test_passes_high(self):
        taps = highpass_fir(5000, FS, 257)
        assert gain_at(taps, 15000) == pytest.approx(1.0, abs=0.05)


class TestBandpass:
    def test_passes_center(self):
        taps = bandpass_fir(8000, 12000, FS, 257)
        assert gain_at(taps, 10000) == pytest.approx(1.0, abs=0.05)

    def test_blocks_outside(self):
        taps = bandpass_fir(8000, 12000, FS, 257)
        assert gain_at(taps, 2000) < 0.02
        assert gain_at(taps, 20000) < 0.02

    def test_rejects_inverted_band(self):
        with pytest.raises(ConfigurationError):
            bandpass_fir(12000, 8000, FS)


class TestFilterSignal:
    def test_group_delay_compensated(self):
        # An impulse should come out centered at its own position.
        taps = design_lowpass_fir(5000, FS, 101)
        x = np.zeros(1000)
        x[500] = 1.0
        y = filter_signal(taps, x)
        assert np.argmax(y) == 500

    def test_output_length_matches(self):
        taps = design_lowpass_fir(5000, FS, 101)
        x = np.random.default_rng(0).standard_normal(777)
        assert filter_signal(taps, x).size == 777

    def test_complex_input_supported(self):
        taps = design_lowpass_fir(5000, FS, 101)
        x = np.exp(1j * 2 * np.pi * 1000 * np.arange(2000) / FS)
        y = filter_signal(taps, x)
        assert np.iscomplexobj(y)
        mid = slice(500, 1500)
        assert np.mean(np.abs(y[mid])) == pytest.approx(1.0, abs=0.05)

    def test_rejects_even_taps(self):
        with pytest.raises(ConfigurationError):
            filter_signal(np.ones(4), np.ones(10))

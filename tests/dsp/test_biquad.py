"""Biquad and emphasis-network tests."""

import numpy as np
import pytest

from repro.dsp.biquad import Biquad, deemphasis_filter, preemphasis_filter
from repro.errors import ConfigurationError

FS = 48_000.0


class TestBiquad:
    def test_rejects_unnormalized(self):
        with pytest.raises(ConfigurationError):
            Biquad(b=(1.0,), a=(2.0,))

    def test_identity_section(self):
        bq = Biquad(b=(1.0,), a=(1.0,))
        x = np.random.default_rng(0).standard_normal(100)
        assert np.allclose(bq.apply(x), x)

    def test_frequency_response_shape(self):
        bq = deemphasis_filter(FS)
        h = bq.frequency_response(np.array([100.0, 10_000.0]), FS)
        assert h.shape == (2,)


class TestEmphasis:
    def test_deemphasis_attenuates_treble(self):
        bq = deemphasis_filter(FS)
        h = bq.frequency_response(np.array([100.0, 10_000.0]), FS)
        assert abs(h[1]) < abs(h[0]) / 3

    def test_deemphasis_corner_frequency(self):
        # 75 us corner is ~2122 Hz: response there should be ~-3 dB.
        bq = deemphasis_filter(FS, tau=75e-6)
        h = bq.frequency_response(np.array([2122.0]), FS)
        assert 20 * np.log10(abs(h[0])) == pytest.approx(-3.0, abs=0.5)

    def test_preemphasis_boosts_treble(self):
        bq = preemphasis_filter(FS)
        h = bq.frequency_response(np.array([100.0, 10_000.0]), FS)
        assert abs(h[1]) > 3 * abs(h[0])

    def test_round_trip_recovers_audio(self):
        # Band-limited audio through pre- then de-emphasis is unchanged.
        rng = np.random.default_rng(1)
        from repro.dsp.filters import design_lowpass_fir, filter_signal

        x = filter_signal(design_lowpass_fir(8000, FS, 257), rng.standard_normal(9600))
        y = deemphasis_filter(FS).apply(preemphasis_filter(FS).apply(x))
        # Ignore the filter warm-up region.
        assert np.allclose(x[500:-500], y[500:-500], atol=1e-6)

    def test_rejects_bad_tau(self):
        with pytest.raises(ConfigurationError):
            deemphasis_filter(FS, tau=-1.0)

"""AGC tests."""

import numpy as np
import pytest

from repro.dsp.agc import AutomaticGainControl

FS = 48_000.0


class TestStaticGain:
    def test_drives_toward_target(self):
        agc = AutomaticGainControl(target_rms=0.25, sample_rate=FS)
        x = 0.05 * np.random.default_rng(0).standard_normal(4800)
        assert agc.static_gain(x) == pytest.approx(0.25 / np.std(x), rel=0.05)

    def test_gain_capped(self):
        agc = AutomaticGainControl(target_rms=0.25, sample_rate=FS, max_gain=10.0)
        assert agc.static_gain(1e-6 * np.ones(1000)) == 10.0


class TestDynamicAgc:
    def test_output_rms_near_target(self):
        agc = AutomaticGainControl(
            target_rms=0.25, attack_seconds=0.01, release_seconds=0.05, sample_rate=FS
        )
        x = 0.05 * np.sin(2 * np.pi * 1000 * np.arange(int(FS)) / FS)
        y = agc.apply(x)
        tail_rms = np.sqrt(np.mean(y[-4800:] ** 2))
        assert tail_rms == pytest.approx(0.25, rel=0.3)

    def test_gain_steps_down_on_level_jump(self):
        agc = AutomaticGainControl(
            target_rms=0.25, attack_seconds=0.01, release_seconds=10.0, sample_rate=FS
        )
        quiet = 0.05 * np.ones(int(0.5 * FS))
        loud = 0.5 * np.ones(int(0.5 * FS))
        y = agc.apply(np.concatenate([quiet, loud]))
        gain_quiet = y[int(0.4 * FS)] / 0.05
        gain_loud = y[-100] / 0.5
        assert gain_loud < gain_quiet

    def test_preserves_length(self):
        agc = AutomaticGainControl(sample_rate=FS)
        x = np.random.default_rng(1).standard_normal(12_345)
        assert agc.apply(x).size == 12_345

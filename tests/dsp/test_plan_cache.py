"""DSP plan-cache tests: LRU behavior and the filters/spectrum hookup."""

import numpy as np
import pytest

from repro.dsp import plan_cache
from repro.dsp.filters import bandpass_fir, design_lowpass_fir
from repro.dsp.plan_cache import (
    PLAN_CACHE_ENV_VAR,
    cached_plan,
    clear_plan_cache,
    plan_cache_stats,
)
from repro.dsp.spectrum import power_spectrum

FS = 48_000.0


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestCachedPlan:
    def test_miss_then_hit_returns_same_object(self):
        calls = []

        def build():
            calls.append(1)
            return np.arange(4.0)

        first = cached_plan(("k", 1), build)
        second = cached_plan(("k", 1), build)
        assert first is second
        assert len(calls) == 1
        stats = plan_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_distinct_keys_do_not_collide(self):
        a = cached_plan(("k", 1), lambda: np.zeros(2))
        b = cached_plan(("k", 2), lambda: np.ones(2))
        assert not np.array_equal(a, b)

    def test_plans_are_non_writable(self):
        plan = cached_plan(("ro",), lambda: np.arange(3.0))
        with pytest.raises(ValueError):
            plan[0] = 99.0

    def test_lru_evicts_oldest(self, monkeypatch):
        monkeypatch.setenv(PLAN_CACHE_ENV_VAR, "2")
        cached_plan(("a",), lambda: np.zeros(1))
        cached_plan(("b",), lambda: np.zeros(1))
        cached_plan(("a",), lambda: np.zeros(1))  # refresh a
        cached_plan(("c",), lambda: np.zeros(1))  # evicts b
        assert plan_cache_stats()["items"] == 2
        rebuilt = []
        cached_plan(("b",), lambda: rebuilt.append(1) or np.zeros(1))
        assert rebuilt  # b was evicted, so its builder ran again

    def test_zero_capacity_disables_caching(self, monkeypatch):
        monkeypatch.setenv(PLAN_CACHE_ENV_VAR, "0")
        calls = []
        for _ in range(2):
            plan = cached_plan(("off",), lambda: calls.append(1) or np.arange(2.0))
            assert not plan.flags.writeable  # identical contract either way
        assert len(calls) == 2
        assert plan_cache_stats()["items"] == 0


class TestDesignHookup:
    def test_lowpass_design_is_cached_and_identical(self):
        first = design_lowpass_fir(15_000.0, FS, 257)
        second = design_lowpass_fir(15_000.0, FS, 257)
        assert first is second
        fresh = plan_cache._cache.copy()
        clear_plan_cache()
        again = design_lowpass_fir(15_000.0, FS, 257)
        assert np.array_equal(again, first)
        assert fresh  # the design really went through the cache

    def test_bandpass_design_is_cached(self):
        first = bandpass_fir(18_000.0, 20_000.0, 200_000.0, 257)
        second = bandpass_fir(18_000.0, 20_000.0, 200_000.0, 257)
        assert first is second

    def test_invalid_designs_still_rejected_before_caching(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            design_lowpass_fir(15_000.0, FS, 256)
        assert plan_cache_stats()["misses"] == 0

    def test_welch_window_cached_and_spectrum_unchanged(self):
        rng = np.random.default_rng(7)
        x = rng.standard_normal(8192)
        clear_plan_cache()
        f1, p1 = power_spectrum(x, FS)
        misses_after_first = plan_cache_stats()["misses"]
        f2, p2 = power_spectrum(x, FS)
        assert plan_cache_stats()["misses"] == misses_after_first
        assert np.array_equal(p1, p2)
        # Bit-identical to the uncached scipy path (same Hann window).
        from scipy import signal as sp_signal

        f3, p3 = sp_signal.welch(x, fs=FS, nperseg=4096)
        assert np.array_equal(p1, p3)

"""Window and envelope tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.windows import hann_window, raised_cosine_edges
from repro.errors import ConfigurationError


class TestHann:
    def test_endpoints_zero(self):
        w = hann_window(64)
        assert w[0] == pytest.approx(0.0)
        assert w[-1] == pytest.approx(0.0)

    def test_peak_is_one(self):
        w = hann_window(65)
        assert np.max(w) == pytest.approx(1.0)

    def test_length_one(self):
        assert np.array_equal(hann_window(1), np.ones(1))

    def test_rejects_zero_length(self):
        with pytest.raises(ConfigurationError):
            hann_window(0)

    def test_matches_numpy(self):
        assert np.allclose(hann_window(128), np.hanning(128))


class TestRaisedCosineEdges:
    def test_flat_interior(self):
        env = raised_cosine_edges(100, 10)
        assert np.allclose(env[10:90], 1.0)

    def test_zero_ramp_is_rect(self):
        assert np.array_equal(raised_cosine_edges(50, 0), np.ones(50))

    def test_symmetry(self):
        env = raised_cosine_edges(100, 20)
        assert np.allclose(env, env[::-1])

    def test_rejects_oversized_ramp(self):
        with pytest.raises(ConfigurationError):
            raised_cosine_edges(10, 6)

    @given(st.integers(min_value=2, max_value=200), st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_bounded_property(self, length, ramp):
        if 2 * ramp > length:
            return
        env = raised_cosine_edges(length, ramp)
        assert env.size == length
        assert np.all(env >= 0.0) and np.all(env <= 1.0 + 1e-12)
